/**
 * @file
 * Tests for the scenario-matrix study engine: the JSON round-trip
 * layer, content-addressed cache keys, batch dedup, cache hit/miss
 * behavior, and the determinism contract that a cached re-run emits
 * byte-identical output.
 */

#include <cstdio>
#include <filesystem>
#include <fstream>

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "core/study_config.hh"
#include "study/cache.hh"
#include "study/matrix.hh"

namespace libra {
namespace {

// --- JSON --------------------------------------------------------------

TEST(StudyJson, DumpParseRoundTrip)
{
    Json j = Json::object();
    j["name"] = "fig13";
    j["count"] = 48;
    j["pi"] = 3.141592653589793;
    j["tiny"] = 4.9e-324; // Denormal min: worst case for formatting.
    j["flag"] = true;
    j["nothing"] = Json();
    Json arr = Json::array();
    arr.push(1.5);
    arr.push("two");
    j["list"] = std::move(arr);

    Json back = Json::parse(j.dump());
    EXPECT_EQ(back.at("name").asString(), "fig13");
    EXPECT_EQ(back.at("count").asNumber(), 48.0);
    EXPECT_EQ(back.at("pi").asNumber(), 3.141592653589793);
    EXPECT_EQ(back.at("tiny").asNumber(), 4.9e-324);
    EXPECT_TRUE(back.at("flag").asBool());
    EXPECT_TRUE(back.at("nothing").isNull());
    EXPECT_EQ(back.at("list").items()[0].asNumber(), 1.5);
    EXPECT_EQ(back.at("list").items()[1].asString(), "two");

    // Dumping preserves insertion order, so dump is idempotent.
    EXPECT_EQ(j.dump(), back.dump());
    EXPECT_EQ(j.dump(2), back.dump(2));
}

TEST(StudyJson, StringEscapes)
{
    Json j = Json::object();
    j["s"] = "quote \" backslash \\ newline \n tab \t";
    Json back = Json::parse(j.dump());
    EXPECT_EQ(back.at("s").asString(),
              "quote \" backslash \\ newline \n tab \t");
}

TEST(StudyJson, RejectsMalformedInput)
{
    EXPECT_THROW(Json::parse(""), FatalError);
    EXPECT_THROW(Json::parse("{"), FatalError);
    EXPECT_THROW(Json::parse("[1,]"), FatalError);
    EXPECT_THROW(Json::parse("{\"a\":1} trailing"), FatalError);
    EXPECT_THROW(Json::parse("nul"), FatalError);
}

TEST(StudyJson, NumberFormattingIsShortestRoundTrip)
{
    EXPECT_EQ(jsonNumberToString(48.0), "48");
    EXPECT_EQ(jsonNumberToString(-3.0), "-3");
    EXPECT_EQ(jsonNumberToString(0.1), "0.1");
    double v = 1.0 / 3.0;
    EXPECT_EQ(std::strtod(jsonNumberToString(v).c_str(), nullptr), v);
}

// --- Cache keys --------------------------------------------------------

LibraInputs
miniInputs(const char* extra = "")
{
    std::string text = "NETWORK SW(4)_RI(4)\nTOTAL_BW 200\n"
                       "STARTS 2\nWORKLOAD resnet50\n";
    text += extra;
    return parseStudyConfigString(text);
}

TEST(StudyCacheKey, IdenticalInputsHashEqual)
{
    EXPECT_EQ(studyCacheHash(miniInputs()), studyCacheHash(miniInputs()));
    EXPECT_EQ(canonicalStudyKey(miniInputs()),
              canonicalStudyKey(miniInputs()));
}

TEST(StudyCacheKey, ResultRelevantFieldsChangeTheHash)
{
    std::uint64_t base = studyCacheHash(miniInputs());
    EXPECT_NE(base, studyCacheHash(miniInputs("SEED 9\n")));
    EXPECT_NE(base, studyCacheHash(miniInputs("IN_NETWORK\n")));
    EXPECT_NE(base, studyCacheHash(miniInputs("CONSTRAINT B1 <= 20\n")));
    EXPECT_NE(base, studyCacheHash(miniInputs("COST Pod LINK 9.9\n")));
    EXPECT_NE(base, studyCacheHash(miniInputs("DOLLAR_CAP 1e6\n")));
    EXPECT_NE(base, studyCacheHash(miniInputs("LOOP TP_DP_OVERLAP\n")));
    EXPECT_NE(base,
              studyCacheHash(miniInputs("OBJECTIVE PERF_PER_COST\n")));

    LibraInputs bw = miniInputs();
    bw.config.totalBw = 300.0;
    EXPECT_NE(base, studyCacheHash(bw));

    LibraInputs weights = miniInputs();
    weights.targets[0].weight = 2.0;
    EXPECT_NE(base, studyCacheHash(weights));

    LibraInputs workload = miniInputs();
    workload.targets[0].workload.layers[0].fwdCompute += 1e-3;
    EXPECT_NE(base, studyCacheHash(workload));
}

TEST(StudyCacheKey, SolverPipelineIsPartOfThePointIdentity)
{
    // Different pipelines produce different reports, so they must
    // never share a cache slot; the same spec must keep hitting.
    std::uint64_t base = studyCacheHash(miniInputs());
    std::uint64_t cmaes = studyCacheHash(miniInputs("SOLVER cmaes\n"));
    std::uint64_t de = studyCacheHash(miniInputs("SOLVER de\n"));
    std::uint64_t chain = studyCacheHash(
        miniInputs("SOLVER cmaes,pattern-search\n"));
    EXPECT_NE(base, cmaes);
    EXPECT_NE(base, de);
    EXPECT_NE(cmaes, de);
    EXPECT_NE(cmaes, chain);
    EXPECT_EQ(cmaes, studyCacheHash(miniInputs("SOLVER cmaes\n")));
    EXPECT_EQ(canonicalStudyKey(miniInputs("SOLVER cmaes\n")),
              canonicalStudyKey(miniInputs("SOLVER cmaes\n")));

    // The default (empty) pipeline must keep the historical key text:
    // version-1 cache entries and goldens stay valid without a bump.
    EXPECT_EQ(canonicalStudyKey(miniInputs())
                  .find("solver("), std::string::npos);
}

TEST(StudyCacheKey, SolverSpecRoundTripsThroughStoreAndLoad)
{
    std::string dir = testing::TempDir() + "libra-cache-solver";
    std::filesystem::remove_all(dir);
    ResultCache cache(dir);

    LibraInputs inputs = miniInputs("SOLVER de\n");
    LibraReport report = runLibra(inputs);
    std::string canonical = canonicalStudyKey(inputs);
    std::uint64_t key = studyCacheHash(inputs);

    cache.store(key, canonical, report);
    LibraReport out;
    ASSERT_TRUE(cache.load(key, canonical, &out));
    EXPECT_EQ(report.optimized.bw, out.optimized.bw);

    // A different solver spec is a different canonical text: even a
    // forced key collision must be detected and treated as a miss.
    setInformEnabled(false);
    EXPECT_FALSE(cache.load(
        key, canonicalStudyKey(miniInputs("SOLVER cmaes\n")), &out));
    std::filesystem::remove_all(dir);
}

TEST(StudyCacheKey, ExploreSpecFoldedOnlyWhenNonDefault)
{
    // The default (and the explicit exhaustive default) must keep the
    // historical key text: version-1 cache entries and goldens stay
    // valid without a kStudyCacheVersion bump.
    std::uint64_t base = studyCacheHash(miniInputs());
    EXPECT_EQ(canonicalStudyKey(miniInputs()).find("explore("),
              std::string::npos);
    EXPECT_EQ(base,
              studyCacheHash(miniInputs("EXPLORE exhaustive\n")));

    // A non-default strategy — and each distinct parameterization —
    // is its own point identity; identical specs keep hitting.
    std::uint64_t prune = studyCacheHash(miniInputs("EXPLORE prune\n"));
    std::uint64_t tuned =
        studyCacheHash(miniInputs("EXPLORE prune,keep=0.25\n"));
    EXPECT_NE(base, prune);
    EXPECT_NE(prune, tuned);
    EXPECT_EQ(prune, studyCacheHash(miniInputs("EXPLORE prune\n")));
    EXPECT_NE(canonicalStudyKey(miniInputs("EXPLORE prune\n"))
                  .find("explore(prune)"),
              std::string::npos);
    // Explicit defaults canonicalize away inside the tag too.
    EXPECT_EQ(prune,
              studyCacheHash(miniInputs("EXPLORE prune,keep=0.5\n")));
}

TEST(StudyCacheKey, ThreadCountDoesNotChangeTheHash)
{
    // Results are bit-identical at any thread count, so parallelism is
    // not part of a point's identity.
    LibraInputs threads = miniInputs();
    threads.threads = 7;
    EXPECT_EQ(studyCacheHash(miniInputs()), studyCacheHash(threads));

    LibraInputs serial = miniInputs();
    serial.config.search.parallel = false;
    EXPECT_EQ(studyCacheHash(miniInputs()), studyCacheHash(serial));
}

TEST(StudyCacheKey, CustomTimingModelIsNotCacheable)
{
    LibraInputs fn = miniInputs();
    fn.config.estimator.commTimeFn =
        [](CollectiveType, Bytes, const std::vector<DimSpan>&,
           const BwConfig&, bool) { return CollectiveTiming{}; };
    EXPECT_FALSE(studyPointCacheable(fn));
    EXPECT_THROW(canonicalStudyKey(fn), FatalError);
}

// --- Report serialization ----------------------------------------------

TEST(StudyCache, ReportJsonRoundTripIsBitExact)
{
    LibraReport report = runLibra(miniInputs());
    LibraReport back = reportFromJson(
        Json::parse(reportToJson(report).dump()));
    EXPECT_EQ(report.optimized.bw, back.optimized.bw);
    EXPECT_EQ(report.optimized.weightedTime,
              back.optimized.weightedTime);
    EXPECT_EQ(report.optimized.cost, back.optimized.cost);
    EXPECT_EQ(report.optimized.objectiveValue,
              back.optimized.objectiveValue);
    EXPECT_EQ(report.optimized.perWorkloadTime,
              back.optimized.perWorkloadTime);
    EXPECT_EQ(report.equalBw.bw, back.equalBw.bw);
    EXPECT_EQ(report.equalBw.weightedTime, back.equalBw.weightedTime);
    EXPECT_EQ(report.speedup, back.speedup);
    EXPECT_EQ(report.perfPerCostGain, back.perfPerCostGain);
}

TEST(StudyCache, StoreAndLoad)
{
    std::string dir = testing::TempDir() + "libra-cache-store";
    std::filesystem::remove_all(dir);
    ResultCache cache(dir);

    LibraInputs inputs = miniInputs();
    LibraReport report = runLibra(inputs);
    std::string canonical = canonicalStudyKey(inputs);
    std::uint64_t key = studyCacheHash(inputs);
    EXPECT_EQ(key, studyCacheHashOfKey(canonical));

    LibraReport out;
    EXPECT_FALSE(cache.load(key, canonical, &out));
    cache.store(key, canonical, report);
    ASSERT_TRUE(cache.load(key, canonical, &out));
    EXPECT_EQ(report.optimized.bw, out.optimized.bw);
    EXPECT_EQ(report.speedup, out.speedup);

    // A hash collision (same key, different canonical inputs) must be
    // detected on load and treated as a miss, never served.
    setInformEnabled(false);
    EXPECT_FALSE(
        cache.load(key, canonicalStudyKey(miniInputs("SEED 9\n")),
                   &out));
    std::filesystem::remove_all(dir);
}

TEST(StudyCache, CorruptEntriesAreTreatedAsMisses)
{
    std::string dir = testing::TempDir() + "libra-cache-corrupt";
    std::filesystem::remove_all(dir);
    ResultCache cache(dir);

    LibraInputs inputs = miniInputs();
    std::uint64_t key = studyCacheHash(inputs);
    char name[32];
    std::snprintf(name, sizeof(name), "%016llx.json",
                  static_cast<unsigned long long>(key));
    {
        std::ofstream file(dir + "/" + name);
        file << "{ not json";
    }
    LibraReport out;
    setInformEnabled(false);
    EXPECT_FALSE(cache.load(key, canonicalStudyKey(inputs), &out));
    std::filesystem::remove_all(dir);
}

// --- Registry and matrix -----------------------------------------------

/** A tiny two-point scenario, registered once per process. */
const char*
miniScenarioName()
{
    static const char* name = [] {
        Scenario s;
        s.name = "test-mini";
        s.title = "engine-test scenario";
        s.build = [] {
            // Two distinct points plus one duplicate of the first:
            // the matrix runner must dedup it.
            std::vector<LibraInputs> points;
            points.push_back(miniInputs());
            points.push_back(miniInputs("SEED 5\n"));
            points.push_back(miniInputs());
            return points;
        };
        s.format = [](const std::vector<LibraInputs>& points,
                      const std::vector<LibraReport>& reports) {
            ScenarioOutput out;
            for (std::size_t i = 0; i < points.size(); ++i) {
                ScenarioRow row;
                row.label("point", std::to_string(i));
                row.metric("speedup", reports[i].speedup);
                row.metric("cost", reports[i].optimized.cost);
                out.rows.push_back(std::move(row));
            }
            out.summarize("points",
                          static_cast<double>(points.size()));
            return out;
        };
        ScenarioRegistry::global().add(std::move(s));
        return "test-mini";
    }();
    return name;
}

TEST(ScenarioRegistry, BuiltinScenariosAreRegistered)
{
    const ScenarioRegistry& registry = ScenarioRegistry::global();
    for (const char* name :
         {"tbl1", "tbl2", "tbl3", "fig09", "fig10", "fig13", "fig14",
          "fig15", "fig16", "fig17", "fig18", "fig21"}) {
        EXPECT_NE(registry.find(name), nullptr) << name;
    }
    for (const auto& name : goldenScenarioNames())
        EXPECT_NE(registry.find(name), nullptr) << name;
    EXPECT_EQ(registry.find("no-such-scenario"), nullptr);
}

TEST(ScenarioRegistry, RejectsDuplicatesAndUnknownNames)
{
    miniScenarioName();
    Scenario dup;
    dup.name = "test-mini";
    dup.format = [](const std::vector<LibraInputs>&,
                    const std::vector<LibraReport>&) {
        return ScenarioOutput{};
    };
    EXPECT_THROW(ScenarioRegistry::global().add(std::move(dup)),
                 FatalError);
    EXPECT_THROW(runScenarioMatrix({"no-such-scenario"}), FatalError);
}

TEST(ScenarioMatrix, DedupsIdenticalPointsWithinABatch)
{
    MatrixResult result = runScenarioMatrix({miniScenarioName()});
    EXPECT_EQ(result.points, 3u);
    EXPECT_EQ(result.unique, 2u);
    EXPECT_EQ(result.computed, 2u);
    EXPECT_EQ(result.fromCache, 0u);
    ASSERT_EQ(result.scenarios.size(), 1u);
    const auto& rows = result.scenarios[0].output.rows;
    ASSERT_EQ(rows.size(), 3u);
    // The duplicate point's report is the shared slot's report.
    EXPECT_EQ(rows[0].metrics, rows[2].metrics);
}

TEST(ScenarioMatrix, SecondRunIsServedFromCacheByteIdentically)
{
    std::string dir = testing::TempDir() + "libra-cache-matrix";
    std::filesystem::remove_all(dir);
    MatrixOptions options;
    options.cacheDir = dir;

    MatrixResult first = runScenarioMatrix({miniScenarioName()},
                                           options);
    EXPECT_EQ(first.fromCache, 0u);
    EXPECT_EQ(first.computed, 2u);

    MatrixResult second = runScenarioMatrix({miniScenarioName()},
                                            options);
    EXPECT_EQ(second.computed, 0u);
    EXPECT_EQ(second.fromCache, second.points);

    EXPECT_EQ(matrixToJson(first).dump(1), matrixToJson(second).dump(1));
    std::filesystem::remove_all(dir);
}

TEST(ScenarioMatrix, RunsMultipleScenariosAsOneBatch)
{
    // tbl1 contributes zero points; test-mini contributes the rest.
    MatrixResult result =
        runScenarioMatrix({"tbl1", miniScenarioName()});
    ASSERT_EQ(result.scenarios.size(), 2u);
    EXPECT_EQ(result.scenarios[0].name, "tbl1");
    EXPECT_EQ(result.scenarios[0].points, 0u);
    EXPECT_EQ(result.scenarios[1].points, 3u);
    EXPECT_EQ(result.points, 3u);

    // tbl1's analytic rows are present and correct (Fig. 12: $1,722).
    double total = 0.0;
    for (const auto& [k, v] : result.scenarios[0].output.summary) {
        if (k == "fig12_total")
            total = v;
    }
    EXPECT_NEAR(total, 1722.0, 1e-9);
}

} // namespace
} // namespace libra
