/**
 * @file
 * Tests for the Themis-style greedy chunk scheduler integration.
 */

#include <gtest/gtest.h>

#include "core/estimator.hh"
#include "runtime/themis.hh"
#include "topology/zoo.hh"
#include "workload/zoo.hh"

namespace libra {
namespace {

TEST(Themis, TimingIsBestOfGreedyAndFixed)
{
    std::vector<DimSpan> spans{{0, 4}, {1, 8}};
    BwConfig bw{20.0, 10.0};
    CollectiveTiming t = themisCollectiveTiming(
        2, CollectiveType::AllReduce, 1e9, spans, bw, 64);

    ChunkTimeline tl(2, bw);
    CollectiveJob job;
    job.type = CollectiveType::AllReduce;
    job.size = 1e9;
    job.spans = spans;
    job.numChunks = 64;
    job.policy = SchedulePolicy::Greedy;
    Seconds greedy = tl.run({job}).makespan;
    job.policy = SchedulePolicy::FixedAscending;
    Seconds fixed = tl.run({job}).makespan;
    EXPECT_NEAR(t.time, std::min(greedy, fixed), 1e-12);
}

TEST(Themis, NeverWorseThanCanonicalOrder)
{
    // The scheduler keeps the ascending order when greedy would hurt.
    std::vector<DimSpan> spans{{0, 4}, {1, 4}, {2, 4}};
    for (BwConfig bw : {BwConfig{761.9, 190.5, 47.6},
                        BwConfig{100.0, 100.0, 100.0},
                        BwConfig{10.0, 200.0, 90.0}}) {
        CollectiveTiming t = themisCollectiveTiming(
            3, CollectiveType::AllReduce, 1e9, spans, bw, 64);
        ChunkTimeline tl(3, bw);
        CollectiveJob job;
        job.type = CollectiveType::AllReduce;
        job.size = 1e9;
        job.spans = spans;
        job.numChunks = 64;
        EXPECT_LE(t.time, tl.run({job}).makespan + 1e-12);
    }
}

TEST(Themis, EmptySpanIsFree)
{
    CollectiveTiming t = themisCollectiveTiming(
        2, CollectiveType::AllReduce, 1e9, {}, {10.0, 10.0}, 64);
    EXPECT_DOUBLE_EQ(t.time, 0.0);
}

TEST(Themis, HelpsImbalancedAllocationMostly)
{
    // On an EqualBW 3D network (imbalanced relative to traffic) Themis
    // must not lose to the fixed order, and typically wins.
    std::vector<DimSpan> spans{{0, 4}, {1, 4}, {2, 4}};
    BwConfig bw{100.0, 100.0, 100.0};
    ChunkTimeline tl(3, bw);

    CollectiveJob fixed;
    fixed.type = CollectiveType::AllReduce;
    fixed.size = 4e9;
    fixed.spans = spans;
    fixed.numChunks = 64;
    CollectiveJob greedy = fixed;
    greedy.policy = SchedulePolicy::Greedy;

    Seconds tFixed = tl.run({fixed}).makespan;
    Seconds tGreedy = tl.run({greedy}).makespan;
    EXPECT_LE(tGreedy, tFixed * 1.001);
}

TEST(Themis, EstimatorIntegrationEndToEnd)
{
    Network net = topo::fourD4K();
    Workload w = wl::gpt3(net.npus());
    BwConfig bw = net.equalBw(1000.0);

    EstimatorOptions plain;
    EstimatorOptions themis;
    themis.commTimeFn = makeThemisCommTimeFn(net.numDims());

    Seconds tPlain = TrainingEstimator(net, plain).estimate(w, bw);
    Seconds tThemis = TrainingEstimator(net, themis).estimate(w, bw);
    EXPECT_GT(tThemis, 0.0);
    // Greedy scheduling on a pipelined collective cannot beat the
    // analytic bottleneck bound by definition, but should stay close
    // and must not blow up.
    EXPECT_LT(tThemis, tPlain * 2.0);
}

TEST(Themis, UtilizationNotLowerThanFixed)
{
    std::vector<DimSpan> spans{{0, 4}, {1, 4}, {2, 4}};
    BwConfig bw{50.0, 120.0, 130.0}; // Wrong-way allocation.
    ChunkTimeline tl(3, bw);

    CollectiveJob fixed;
    fixed.type = CollectiveType::AllReduce;
    fixed.size = 4e9;
    fixed.spans = spans;
    fixed.numChunks = 64;
    CollectiveJob greedy = fixed;
    greedy.policy = SchedulePolicy::Greedy;

    auto rFixed = tl.run({fixed});
    auto rGreedy = tl.run({greedy});
    EXPECT_GE(rGreedy.avgBwUtilization,
              rFixed.avgBwUtilization * 0.999);
}

} // namespace
} // namespace libra
