/**
 * @file
 * The parallel evaluation engine's determinism guarantee: optimize()
 * must return bit-identical results at any thread count. Covers a
 * fig09-style 3D bandwidth-allocation study and a fig16-style
 * topology-exploration point, plus the parallel study-sweep path.
 */

#include <gtest/gtest.h>

#include "common/random.hh"
#include "common/thread_pool.hh"
#include "core/framework.hh"
#include "core/objective.hh"
#include "core/optimizer.hh"
#include "core/study_config.hh"
#include "core/timing_backend.hh"
#include "topology/zoo.hh"
#include "workload/zoo.hh"

namespace libra {
namespace {

/** Run @p fn under each thread count; every result must match the first
 *  bit-for-bit. */
void
expectIdenticalAcrossThreadCounts(
    const std::function<OptimizationResult()>& fn)
{
    ThreadPool::setGlobalThreads(1);
    OptimizationResult serial = fn();
    for (std::size_t threads : {2, 8}) {
        ThreadPool::setGlobalThreads(threads);
        OptimizationResult parallel = fn();
        ASSERT_EQ(serial.bw.size(), parallel.bw.size());
        for (std::size_t i = 0; i < serial.bw.size(); ++i) {
            EXPECT_EQ(serial.bw[i], parallel.bw[i])
                << "dim " << i << " at " << threads << " threads";
        }
        EXPECT_EQ(serial.objectiveValue, parallel.objectiveValue)
            << threads << " threads";
        EXPECT_EQ(serial.weightedTime, parallel.weightedTime)
            << threads << " threads";
    }
    ThreadPool::setGlobalThreads(1);
}

/** Fig. 9 setting: distribute BW over a 3D 64-NPU network. */
TEST(ParallelDeterminism, Fig09StyleAllocation)
{
    Network net = Network::parse("RI(4)_FC(4)_SW(4)");
    Workload w;
    w.name = "fig09-ar";
    w.strategy = {1, net.npus()};
    Layer l;
    l.wgComm.push_back(
        {CollectiveType::AllReduce, CommScope::Dp, 1e9});
    w.layers.push_back(l);

    expectIdenticalAcrossThreadCounts([&] {
        BwOptimizer opt(net, CostModel::defaultModel());
        OptimizerConfig cfg;
        cfg.totalBw = 300.0;
        cfg.search.starts = 6;
        return opt.optimize({{w, 1.0}}, cfg);
    });
}

/** Fig. 16 setting: MSFT-1T on the 3D-512 topology. */
TEST(ParallelDeterminism, Fig16StyleTopologyPoint)
{
    Network net = topo::threeD512();
    Workload w = wl::msft1T(net.npus());

    expectIdenticalAcrossThreadCounts([&] {
        BwOptimizer opt(net, CostModel::defaultModel());
        OptimizerConfig cfg;
        cfg.totalBw = 500.0;
        cfg.search.starts = 3;
        cfg.objective = OptimizationObjective::PerfPerCostOpt;
        return opt.optimize({{w, 1.0}}, cfg);
    });
}

/**
 * The new global strategies batch population evaluations on the pool,
 * so they must uphold the same contract: selecting them via the
 * pipeline spec yields bit-identical designs at any thread count.
 */
TEST(ParallelDeterminism, CmaesAndDePipelinesAreThreadCountInvariant)
{
    Network net = Network::parse("RI(4)_FC(4)_SW(4)");
    Workload w = wl::resnet50(net.npus());

    for (const char* solver : {"cmaes", "de"}) {
        SCOPED_TRACE(solver);
        expectIdenticalAcrossThreadCounts([&] {
            BwOptimizer opt(net, CostModel::defaultModel());
            OptimizerConfig cfg;
            cfg.totalBw = 300.0;
            cfg.search.starts = 2;
            cfg.search.pipeline = {solver, "pattern-search"};
            cfg.objective = OptimizationObjective::PerfPerCostOpt;
            return opt.optimize({{w, 1.0}}, cfg);
        });
    }
}

/**
 * The compiled objective's batched facet fans fixed 32-candidate
 * blocks across the pool, so its output must be bit-identical at any
 * thread count — this is what makes the batched CMA-ES and DE
 * generations above thread-count invariant in the first place.
 */
TEST(ParallelDeterminism, EvaluateBatchIsThreadCountInvariant)
{
    Network net = topo::threeD512();
    Workload w = wl::msft1T(net.npus());
    TrainingEstimator est(net);
    CostModel cost = CostModel::defaultModel();
    std::vector<TargetWorkload> targets = {{w, 1.0}};
    ScalarObjective f = makeObjective(
        OptimizationObjective::PerfPerCostOpt, est, cost, targets);
    const BatchEvaluable* batch = batchFacet(f);
    ASSERT_NE(batch, nullptr);

    Rng rng(0xBA7C4);
    std::vector<Vec> pool;
    for (int i = 0; i < 100; ++i) {
        Vec bw = rng.simplexPoint(net.numDims(), 600.0);
        for (auto& b : bw)
            b = std::max(b, 1.0);
        pool.push_back(std::move(bw));
    }

    ThreadPool::setGlobalThreads(1);
    std::vector<double> serial(pool.size(), -1.0);
    batch->evaluateBatch(pool.data(), pool.size(), serial.data());
    for (std::size_t threads : {2, 8}) {
        ThreadPool::setGlobalThreads(threads);
        std::vector<double> parallel(pool.size(), -2.0);
        batch->evaluateBatch(pool.data(), pool.size(),
                             parallel.data());
        for (std::size_t i = 0; i < pool.size(); ++i) {
            EXPECT_EQ(serial[i], parallel[i])
                << "candidate " << i << " at " << threads
                << " threads";
        }
    }
    ThreadPool::setGlobalThreads(1);
}

/**
 * The chunk-sim timing backend runs inside the parallel multistart
 * fan-out (named backends, unlike ad-hoc commTimeFns, keep
 * search.parallel on), so it must uphold the same contract: same
 * winner and timings at 1, 2, and max threads — with the per-thread
 * memoization cache both on and off.
 */
TEST(ParallelDeterminism, ChunkSimBackendIsThreadCountInvariant)
{
    Network net = Network::parse("RI(4)_FC(4)_SW(4)");
    Workload w = wl::resnet50(net.npus());

    for (bool memo : {true, false}) {
        SCOPED_TRACE(memo ? "memo on" : "memo off");
        setChunkSimMemoEnabled(memo);
        expectIdenticalAcrossThreadCounts([&] {
            BwOptimizer opt(net, CostModel::defaultModel());
            OptimizerConfig cfg;
            cfg.totalBw = 300.0;
            cfg.search.starts = 2;
            cfg.search.maxEvalsPerStart = 200;
            cfg.estimator.timingBackend = kChunkSimTimingBackendName;
            return opt.optimize({{w, 1.0}}, cfg);
        });
    }
    setChunkSimMemoEnabled(true);

    // Memo on/off must also agree with each other, not just with
    // themselves: the cache only amortizes, never alters.
    setChunkSimMemoEnabled(false);
    BwOptimizer opt(net, CostModel::defaultModel());
    OptimizerConfig cfg;
    cfg.totalBw = 300.0;
    cfg.search.starts = 2;
    cfg.search.maxEvalsPerStart = 200;
    cfg.estimator.timingBackend = kChunkSimTimingBackendName;
    OptimizationResult direct = opt.optimize({{w, 1.0}}, cfg);
    setChunkSimMemoEnabled(true);
    OptimizationResult memoized = opt.optimize({{w, 1.0}}, cfg);
    EXPECT_EQ(direct.objectiveValue, memoized.objectiveValue);
    ASSERT_EQ(direct.bw.size(), memoized.bw.size());
    for (std::size_t i = 0; i < direct.bw.size(); ++i)
        EXPECT_EQ(direct.bw[i], memoized.bw[i]);
}

/** A parallel sweep must match point-by-point serial runs exactly. */
TEST(ParallelDeterminism, SweepMatchesStandaloneRuns)
{
    std::vector<LibraInputs> points;
    for (double bw : {250.0, 500.0}) {
        LibraInputs p;
        p.networkShape = "RI(4)_FC(4)_SW(4)";
        p.targets.push_back(
            {zooWorkloadByName("resnet50",
                               Network::parse(p.networkShape).npus()),
             1.0});
        p.config.totalBw = bw;
        p.config.search.starts = 2;
        points.push_back(std::move(p));
    }

    ThreadPool::setGlobalThreads(1);
    std::vector<LibraReport> serial;
    for (const auto& p : points)
        serial.push_back(runLibra(p));

    ThreadPool::setGlobalThreads(4);
    std::vector<LibraReport> swept = runLibraSweep(points);
    ThreadPool::setGlobalThreads(1);

    ASSERT_EQ(serial.size(), swept.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
        EXPECT_EQ(serial[i].optimized.objectiveValue,
                  swept[i].optimized.objectiveValue);
        EXPECT_EQ(serial[i].speedup, swept[i].speedup);
        ASSERT_EQ(serial[i].optimized.bw.size(),
                  swept[i].optimized.bw.size());
        for (std::size_t d = 0; d < serial[i].optimized.bw.size(); ++d)
            EXPECT_EQ(serial[i].optimized.bw[d],
                      swept[i].optimized.bw[d]);
    }
}

} // namespace
} // namespace libra
