/**
 * @file
 * Tests for the design-space exploration layer: lazy expansion order
 * and labels, explore-spec parsing/canonicalization, the registry, the
 * prune strategy's determinism and efficiency contracts, the matrix
 * integration (cache round-trip, thread-count bit-identity), and the
 * pin that the exhaustive expansion of the refactored paper scenarios
 * reproduces the historical hand enumeration point for point.
 */

#include <filesystem>

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "common/thread_pool.hh"
#include "explore/explore.hh"
#include "study/cache.hh"
#include "study/matrix.hh"
#include "study/scenario_util.hh"

namespace libra {
namespace {

/** A cheap two-topology, two-budget PerfOpt space. */
DesignSpace
miniSpace()
{
    DesignSpace space;
    space.topologies = {{"2D-16", "SW(4)_RI(4)"},
                        {"2D-32", "FC(4)_SW(8)"}};
    space.workloads.push_back(
        {"ResNet-50",
         [](long npus) {
             return std::vector<TargetWorkload>{
                 {wl::resnet50(npus), 1.0}};
         },
         false});
    space.budgets = {200.0, 400.0};
    space.objectives = {OptimizationObjective::PerfOpt};
    space.search.starts = 2;
    return space;
}

// --- Design-space expansion --------------------------------------------

TEST(DesignSpace, ExpandsInDocumentedOrderWithLabels)
{
    DesignSpace space = miniSpace();
    space.objectives.push_back(OptimizationObjective::PerfPerCostOpt);
    ASSERT_EQ(candidateCount(space), 8u);

    std::vector<Candidate> all = expandDesignSpace(space);
    ASSERT_EQ(all.size(), 8u);
    // Objectives fastest, then budgets, topologies slowest.
    EXPECT_EQ(all[0].topology, "2D-16");
    EXPECT_EQ(all[0].budget, 200.0);
    EXPECT_EQ(all[0].objective, OptimizationObjective::PerfOpt);
    EXPECT_EQ(all[1].objective,
              OptimizationObjective::PerfPerCostOpt);
    EXPECT_EQ(all[2].budget, 400.0);
    EXPECT_EQ(all[4].topology, "2D-32");
    for (std::size_t i = 0; i < all.size(); ++i) {
        EXPECT_EQ(all[i].index, i);
        EXPECT_EQ(all[i].workload, "ResNet-50");
        EXPECT_EQ(all[i].cost, ""); // No cost axis: default model.
        EXPECT_EQ(all[i].inputs.config.totalBw, all[i].budget);
        EXPECT_EQ(all[i].inputs.config.search.starts, 2);
    }
    // Shapes canonicalize through Network::parse.
    EXPECT_EQ(all[0].inputs.networkShape,
              Network::parse("SW(4)_RI(4)").name());

    // Lazy indexing materializes the same candidate.
    Candidate c5 = candidateAt(space, 5);
    EXPECT_EQ(c5.topology, all[5].topology);
    EXPECT_EQ(canonicalStudyKey(c5.inputs),
              canonicalStudyKey(all[5].inputs));
    EXPECT_THROW(candidateAt(space, 8), FatalError);
}

TEST(DesignSpace, RejectsEmptyRequiredAxes)
{
    DesignSpace space = miniSpace();
    space.budgets.clear();
    EXPECT_THROW(candidateCount(space), FatalError);

    DesignSpace noTopo = miniSpace();
    noTopo.topologies.clear();
    EXPECT_THROW(expandDesignSpace(noTopo), FatalError);

    DesignSpace noBuilder = miniSpace();
    noBuilder.workloads[0].targets = nullptr;
    EXPECT_THROW(candidateCount(noBuilder), FatalError);
}

// --- Spec parsing and the registry -------------------------------------

TEST(ExploreSpec, CanonicalizationNormalizesDefaults)
{
    EXPECT_EQ(canonicalExploreSpec(""), "");
    EXPECT_EQ(canonicalExploreSpec("exhaustive"), "");
    EXPECT_EQ(canonicalExploreSpec("prune"), "prune");
    // Explicit defaults are elided; non-defaults keep declared order.
    EXPECT_EQ(canonicalExploreSpec("prune,keep=0.5"), "prune");
    EXPECT_EQ(canonicalExploreSpec("prune , keep = 0.25"),
              "prune,keep=0.25");
    EXPECT_EQ(canonicalExploreSpec("prune,rounds=2,keep=0.25"),
              "prune,keep=0.25,rounds=2");
    // The canonical form is a fixpoint.
    EXPECT_EQ(canonicalExploreSpec("prune,keep=0.25,rounds=2"),
              canonicalExploreSpec(
                  canonicalExploreSpec("prune,rounds=2,keep=0.25")));
}

TEST(ExploreSpec, RejectsMalformedSpecs)
{
    EXPECT_THROW(canonicalExploreSpec("warp-drive"), FatalError);
    EXPECT_THROW(canonicalExploreSpec("prune,warp=1"), FatalError);
    EXPECT_THROW(canonicalExploreSpec("prune,keep"), FatalError);
    EXPECT_THROW(canonicalExploreSpec("prune,keep=abc"), FatalError);
    EXPECT_THROW(canonicalExploreSpec("prune,keep=0"), FatalError);
    EXPECT_THROW(canonicalExploreSpec("prune,keep=2"), FatalError);
    EXPECT_THROW(canonicalExploreSpec("prune,keep=0.5,keep=0.5"),
                 FatalError);
    // Integral parameters reject fractions: truncating silently would
    // put two canonical tags on one behavior.
    EXPECT_THROW(canonicalExploreSpec("prune,rounds=2.5"), FatalError);
    EXPECT_THROW(canonicalExploreSpec("prune,screen-evals=80.5"),
                 FatalError);
    // Exhaustive declares no parameters at all.
    EXPECT_THROW(canonicalExploreSpec("exhaustive,keep=0.5"),
                 FatalError);
}

TEST(ExploreRegistry, BuiltinsRegisteredAndDuplicatesRejected)
{
    ExploreRegistry& registry = ExploreRegistry::global();
    EXPECT_NE(registry.find(kExhaustiveExploreName), nullptr);
    EXPECT_NE(registry.find(kPruneExploreName), nullptr);
    EXPECT_EQ(registry.find("no-such-strategy"), nullptr);
    EXPECT_EQ(registry.names()[0], kExhaustiveExploreName);

    class Dup : public ExploreStrategy
    {
        std::string name() const override { return "prune"; }
        std::string description() const override { return ""; }
        ExploreResult
        explore(const std::vector<Candidate>&,
                const std::vector<double>&,
                const ExploreSweepFn&) const override
        {
            return {};
        }
    };
    EXPECT_THROW(registry.add(std::make_unique<Dup>()), FatalError);
}

// --- Strategy behavior -------------------------------------------------

TEST(ExploreStrategies, PruneFindsExhaustiveWinnerWithFewerFullRuns)
{
    std::vector<Candidate> candidates =
        expandDesignSpace(miniSpace());

    std::size_t optimizeCalls = 0;
    ExploreSweepFn sweep = [&](const std::vector<LibraInputs>& batch) {
        optimizeCalls += batch.size();
        return runLibraSweep(batch);
    };

    ExploreResult exhaustive = exploreCandidates(candidates, "", sweep);
    std::size_t exhaustiveCalls = optimizeCalls;
    ASSERT_EQ(exhaustive.outcomes.size(), candidates.size());
    EXPECT_EQ(exhaustive.fullRuns, candidates.size());
    EXPECT_EQ(exhaustive.screenRuns, 0u);
    ASSERT_EQ(exhaustive.winners.size(), 1u); // One objective stratum.
    for (const auto& o : exhaustive.outcomes)
        EXPECT_TRUE(o.fullBudget);

    optimizeCalls = 0;
    ExploreResult prune =
        exploreCandidates(candidates, "prune", sweep);
    ASSERT_EQ(prune.outcomes.size(), candidates.size());
    EXPECT_LT(prune.fullRuns, exhaustive.fullRuns);
    EXPECT_EQ(prune.screenRuns, candidates.size());
    ASSERT_EQ(prune.winners.size(), 1u);
    EXPECT_EQ(prune.winners[0], exhaustive.winners[0]);
    EXPECT_EQ(prune.outcomes[prune.winners[0]]
                  .report.optimized.bw,
              exhaustive.outcomes[exhaustive.winners[0]]
                  .report.optimized.bw);
    // Full-budget survivors carry full-budget (= exhaustive) reports.
    for (const auto& o : prune.outcomes) {
        if (!o.fullBudget)
            continue;
        EXPECT_EQ(o.report.optimized.bw,
                  exhaustive.outcomes[o.candidate.index]
                      .report.optimized.bw);
        EXPECT_EQ(o.roundsSurvived, 1);
    }
    EXPECT_LT(optimizeCalls, 2 * exhaustiveCalls);
}

TEST(ExploreStrategies, PruneKeepsAtLeastOnePerStratum)
{
    DesignSpace space = miniSpace();
    space.objectives.push_back(OptimizationObjective::PerfPerCostOpt);
    std::vector<Candidate> candidates = expandDesignSpace(space);
    ExploreSweepFn sweep = [](const std::vector<LibraInputs>& batch) {
        return runLibraSweep(batch);
    };
    // keep=1e-6 floors at one survivor per objective stratum.
    ExploreResult r =
        exploreCandidates(candidates, "prune,keep=1e-06", sweep);
    EXPECT_EQ(r.fullRuns, 2u);
    EXPECT_EQ(r.winners.size(), 2u);
}

// --- Matrix integration ------------------------------------------------

/** A design-space scenario registered once per process. */
const char*
miniSpaceScenarioName()
{
    static const char* name = [] {
        Scenario s;
        s.name = "test-mini-space";
        s.title = "explore-test design-space scenario";
        s.space = miniSpace;
        s.formatSpace = [](const ExploreResult& r) {
            ScenarioOutput out;
            for (const ExploreOutcome& o : r.outcomes) {
                ScenarioRow row;
                row.label("net", o.candidate.topology);
                row.label("bw", bwLabel(o.candidate.budget));
                row.label("stage",
                          o.fullBudget ? "full" : "screened");
                row.metric("time", o.report.optimized.weightedTime);
                row.metric("cost", o.report.optimized.cost);
                out.rows.push_back(std::move(row));
            }
            out.summarize("full_runs",
                          static_cast<double>(r.fullRuns));
            out.summarize("winner",
                          static_cast<double>(r.winners.at(0)));
            return out;
        };
        ScenarioRegistry::global().add(std::move(s));
        return "test-mini-space";
    }();
    return name;
}

TEST(ExploreMatrix, ExhaustiveSpaceScenarioRunsInSharedBatch)
{
    MatrixResult result =
        runScenarioMatrix({miniSpaceScenarioName()});
    ASSERT_EQ(result.scenarios.size(), 1u);
    EXPECT_EQ(result.points, 4u);
    EXPECT_EQ(result.computed, 4u);
    const auto& rows = result.scenarios[0].output.rows;
    ASSERT_EQ(rows.size(), 4u);
    for (const auto& row : rows)
        EXPECT_EQ(row.labels[2].second, "full");
}

TEST(ExploreMatrix, PruneIsBitIdenticalAtAnyThreadCount)
{
    MatrixOptions options;
    options.exploreSpec = "prune";
    std::string dumps[3];
    std::size_t threadCounts[3] = {1, 2, 8};
    for (int i = 0; i < 3; ++i) {
        ThreadPool::setGlobalThreads(threadCounts[i]);
        dumps[i] = matrixToJson(runScenarioMatrix(
                                    {miniSpaceScenarioName()}, options))
                       .dump(1);
    }
    ThreadPool::setGlobalThreads(4);
    EXPECT_EQ(dumps[0], dumps[1]);
    EXPECT_EQ(dumps[0], dumps[2]);
    // And prune actually pruned: some row is only screened.
    EXPECT_NE(dumps[0].find("screened"), std::string::npos);
}

TEST(ExploreMatrix, PruneCacheRoundTripIsByteIdentical)
{
    std::string dir = testing::TempDir() + "libra-cache-explore";
    std::filesystem::remove_all(dir);
    MatrixOptions options;
    options.cacheDir = dir;
    options.exploreSpec = "prune";

    MatrixResult first =
        runScenarioMatrix({miniSpaceScenarioName()}, options);
    EXPECT_GT(first.computed, 0u);
    MatrixResult second =
        runScenarioMatrix({miniSpaceScenarioName()}, options);
    EXPECT_EQ(second.computed, 0u);
    EXPECT_EQ(second.fromCache, second.points);
    EXPECT_EQ(matrixToJson(first).dump(1),
              matrixToJson(second).dump(1));

    // Exhaustive must not be served from prune's entries: its
    // candidates carry no explore tag, so every point recomputes.
    MatrixOptions exhaustive;
    exhaustive.cacheDir = dir;
    MatrixResult third =
        runScenarioMatrix({miniSpaceScenarioName()}, exhaustive);
    EXPECT_EQ(third.computed, third.unique);
    std::filesystem::remove_all(dir);
}

TEST(ExploreMatrix, OverrideLeavesNonSpaceScenariosAlone)
{
    MatrixOptions options;
    options.exploreSpec = "prune";
    MatrixResult withOverride = runScenarioMatrix({"tbl1"}, options);
    MatrixResult plain = runScenarioMatrix({"tbl1"});
    EXPECT_EQ(matrixToJson(withOverride).dump(1),
              matrixToJson(plain).dump(1));
}

TEST(ExploreMatrix, RejectsUnknownOverrideSpec)
{
    MatrixOptions options;
    options.exploreSpec = "warp-drive";
    EXPECT_THROW(runScenarioMatrix({miniSpaceScenarioName()}, options),
                 FatalError);
}

// --- The refactored paper scenarios ------------------------------------

/**
 * The historical hand enumerations of fig16 and fig21, exactly as
 * their build() lambdas wrote them before the design-space refactor.
 * The exhaustive expansion must reproduce them point for point (same
 * canonical study keys in the same order), which — together with the
 * formatter's label pin in tests/golden/fig{16,21}.json — guarantees
 * the refactor changed no emitted byte.
 */
std::vector<LibraInputs>
handEnumeratedFig16()
{
    std::vector<LibraInputs> points;
    for (const auto& [label, net] : fig16Nets()) {
        for (double bw : paperBwSweep()) {
            points.push_back(makeStudyPoint(
                net, {{wl::msft1T(net.npus()), 1.0}},
                OptimizationObjective::PerfOpt, bw));
            points.push_back(makeStudyPoint(
                net, {{wl::msft1T(net.npus()), 1.0}},
                OptimizationObjective::PerfPerCostOpt, bw));
        }
    }
    return points;
}

std::vector<LibraInputs>
handEnumeratedFig21()
{
    Network net = topo::fourD4K();
    std::vector<LibraInputs> points;
    for (long tp : fig21TpDegrees()) {
        points.push_back(makeStudyPoint(
            net, {{wl::msft1TWithStrategy(tp, net.npus() / tp), 1.0}},
            OptimizationObjective::PerfOpt, 1000.0));
    }
    return points;
}

void
expectExpansionMatches(const char* scenarioName,
                       const std::vector<LibraInputs>& expected)
{
    const Scenario* s = ScenarioRegistry::global().find(scenarioName);
    ASSERT_NE(s, nullptr);
    ASSERT_TRUE(static_cast<bool>(s->space));
    std::vector<Candidate> candidates = expandDesignSpace(s->space());
    ASSERT_EQ(candidates.size(), expected.size());
    for (std::size_t i = 0; i < candidates.size(); ++i) {
        EXPECT_EQ(canonicalStudyKey(candidates[i].inputs),
                  canonicalStudyKey(expected[i]))
            << scenarioName << " candidate " << i;
    }
}

TEST(ExploreScenarios, ExhaustiveExpansionMatchesHandEnumeration)
{
    expectExpansionMatches("fig16", handEnumeratedFig16());
    expectExpansionMatches("fig21", handEnumeratedFig21());
}

TEST(ExploreScenarios, FrontierSpaceIsLargerThanAnyPaperFigure)
{
    const Scenario* s =
        ScenarioRegistry::global().find("explore-frontier");
    ASSERT_NE(s, nullptr);
    DesignSpace space = s->space();
    // Strictly larger on every explored axis than fig16 (the largest
    // paper exploration): more shapes, more budgets, both objectives.
    EXPECT_GT(space.topologies.size(), fig16Nets().size());
    EXPECT_GT(space.budgets.size(), paperBwSweep().size());
    EXPECT_EQ(space.objectives.size(), 2u);
    EXPECT_GT(candidateCount(space), 24u);
}

} // namespace
} // namespace libra
