/**
 * @file
 * Cross-model integration tests: randomized workloads are evaluated by
 * the analytical estimator, the chunk-level training simulator, and
 * (where applicable) the data-carrying collective simulator, and the
 * three layers must agree. This is the repo's internal validation of
 * the paper's "LIBRA model vs ASTRA-sim" methodology.
 */

#include <gtest/gtest.h>

#include "common/random.hh"
#include "core/estimator.hh"
#include "core/optimizer.hh"
#include "sim/collective_sim.hh"
#include "sim/training_sim.hh"
#include "topology/zoo.hh"
#include "workload/zoo.hh"

namespace libra {
namespace {

/** Random small workload over a given strategy. */
Workload
randomWorkload(Rng& rng, long tp, long dp)
{
    Workload w;
    w.name = "random";
    w.strategy = {tp, dp};
    int layers = rng.uniformInt(1, 6);
    for (int l = 0; l < layers; ++l) {
        Layer layer;
        // Append instead of `"L" + to_string(...)`: GCC 12's
        // -Wrestrict false-positives on that operator+ overload.
        layer.name = "L";
        layer.name += std::to_string(l);
        layer.fwdCompute = rng.uniform(0.0, 5e-3);
        layer.igCompute = rng.uniform(0.0, 5e-3);
        layer.wgCompute = rng.uniform(0.0, 5e-3);
        if (tp > 1 && rng.uniformInt(0, 1)) {
            layer.fwdComm.push_back({CollectiveType::AllReduce,
                                     CommScope::Tp,
                                     rng.uniform(1e6, 5e8)});
            layer.igComm.push_back({CollectiveType::AllReduce,
                                    CommScope::Tp,
                                    rng.uniform(1e6, 5e8)});
        }
        if (dp > 1) {
            CollectiveType t = rng.uniformInt(0, 1)
                                   ? CollectiveType::AllReduce
                                   : CollectiveType::ReduceScatter;
            layer.wgComm.push_back(
                {t, CommScope::Dp, rng.uniform(1e6, 5e8)});
        }
        if (rng.uniformInt(0, 3) == 0) {
            layer.fwdComm.push_back({CollectiveType::AllToAll,
                                     CommScope::All,
                                     rng.uniform(1e6, 1e8)});
        }
        w.layers.push_back(std::move(layer));
    }
    return w;
}

/** Estimator and chunk simulator agree on random workloads. */
class RandomizedAgreement : public ::testing::TestWithParam<int>
{};

TEST_P(RandomizedAgreement, EstimatorVsTrainingSim)
{
    Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 13);
    Network net = Network::parse("RI(4)_FC(4)_SW(4)"); // 64 NPUs.

    // Pick a valid HP split of 64.
    const long tps[] = {1, 4, 16};
    long tp = tps[rng.uniformInt(0, 2)];
    Workload w = randomWorkload(rng, tp, net.npus() / tp);

    BwConfig bw = rng.simplexPoint(net.numDims(), 600.0);
    for (auto& b : bw)
        b = std::max(b, 5.0);

    for (auto loop :
         {TrainingLoop::NoOverlap, TrainingLoop::TpDpOverlap}) {
        EstimatorOptions eo;
        eo.loop = loop;
        Seconds analytic = TrainingEstimator(net, eo).estimate(w, bw);

        TrainingSimOptions so;
        so.loop = loop;
        so.chunksPerCollective = 128;
        TrainingSimResult sim = TrainingSim(net, so).simulate(w, bw);

        if (analytic <= 0.0) {
            EXPECT_NEAR(sim.total, 0.0, 1e-12);
            continue;
        }
        // The chunk pipeline can only add fill/drain overhead (and the
        // overlap sim may resolve fabric contention slightly better or
        // worse than the analytic max()).
        EXPECT_GT(sim.total, analytic * 0.9);
        EXPECT_LT(sim.total, analytic * 1.25);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomizedAgreement,
                         ::testing::Range(0, 25));

/** Sequential data-carrying sim matches the analytic per-dim times. */
class CollectiveCrossCheck
    : public ::testing::TestWithParam<const char*>
{};

TEST_P(CollectiveCrossCheck, DataSimVsAnalyticStageSum)
{
    Network net = Network::parse(GetParam());
    Rng rng(31);
    BwConfig bw = rng.simplexPoint(net.numDims(), 300.0);
    for (auto& b : bw)
        b = std::max(b, 5.0);

    std::size_t elems = static_cast<std::size_t>(net.npus()) * 8;
    CollectiveSim sim(net, bw, 0.0, kFp32Bytes);
    sim.init(elems, [](long id, std::size_t i) {
        return static_cast<double>(id) * 0.5 +
               static_cast<double>(i) * 0.25;
    });
    Seconds t = sim.runAllReduce();
    EXPECT_TRUE(sim.verifyAllReduce(1e-6));

    Bytes m = static_cast<double>(elems) * kFp32Bytes;
    auto spans = mapGroupToDims(net, 1, net.npus());
    auto timing = multiRailTime(CollectiveType::AllReduce, m, spans, bw);
    Seconds sum = 0.0;
    for (Seconds s : timing.timePerDim)
        sum += s;
    EXPECT_NEAR(t, sum, sum * 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Shapes, CollectiveCrossCheck,
                         ::testing::Values("RI(4)_FC(4)_SW(4)",
                                           "SW(8)_SW(8)",
                                           "RI(4)_RI(4)_RI(4)",
                                           "FC(8)_RI(2)"));

TEST(Integration, EndToEndStudyOnEveryTableThreeTopology)
{
    // Smoke: a full optimize+baseline cycle on each evaluation network
    // with a matching workload, all results sane.
    for (const auto& [label, net] : topo::tableThree()) {
        long npus = net.npus();
        Workload w = npus % 128 == 0 ? wl::msft1T(npus)
                                     : wl::resnet50(npus);
        BwOptimizer opt(net, CostModel::defaultModel());
        OptimizerConfig cfg;
        cfg.totalBw = 300.0;
        cfg.search.starts = 1;
        OptimizationResult best = opt.optimize({{w, 1.0}}, cfg);
        OptimizationResult base = opt.baseline({{w, 1.0}}, cfg);
        EXPECT_LE(best.weightedTime, base.weightedTime * (1 + 1e-9))
            << label;
        EXPECT_GT(best.cost, 0.0) << label;
        double total = 0.0;
        for (double b : best.bw)
            total += b;
        EXPECT_NEAR(total, 300.0, 1e-3) << label;
    }
}

} // namespace
} // namespace libra
