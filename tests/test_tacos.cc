/**
 * @file
 * Tests for the TACOS-style time-expanded collective synthesizer.
 */

#include <gtest/gtest.h>

#include "collective/multi_rail.hh"
#include "runtime/tacos.hh"
#include "topology/zoo.hh"

namespace libra {
namespace {

TEST(Tacos, AllGatherCompletesOnRing)
{
    Network net = Network::parse("RI(4)");
    TacosSynthesizer tacos(net, {10.0});
    TacosResult r = tacos.synthesizeAllGather(1e6, 1);
    EXPECT_GT(r.time, 0.0);
    // 4 NPUs each need 3 foreign chunks: 12 deliveries minimum.
    EXPECT_GE(r.transfers, 12);
}

TEST(Tacos, RingAllGatherNearOptimal)
{
    // On a unidirectional-capable ring of g, AG of one chunk per NPU
    // needs (g-1) rounds; with both directions at B/2 the best time is
    // (g-1) * chunk / (B/2)... greedy should be within 2x of the
    // bandwidth lower bound: (g-1)*chunk / B.
    Network net = Network::parse("RI(8)");
    GBps b = 16.0;
    Bytes chunk = 8e6;
    TacosSynthesizer tacos(net, {b});
    TacosResult r = tacos.synthesizeAllGather(chunk, 1);
    Seconds lower = transferTime(7.0 * chunk, b);
    EXPECT_GE(r.time, lower * 0.999);
    EXPECT_LE(r.time, lower * 2.5);
}

TEST(Tacos, UsesAllDimensionsOfTorus)
{
    Network net = topo::threeDTorus();
    TacosSynthesizer tacos(net, net.equalBw(300.0));
    TacosResult r = tacos.synthesizeAllGather(1e6, 1);
    ASSERT_EQ(r.dimBusy.size(), 3u);
    for (Seconds busy : r.dimBusy)
        EXPECT_GT(busy, 0.0);
}

TEST(Tacos, BeatsSequentialMultiRailOnSkewedBw)
{
    // Multi-rail serializes dims per chunk; TACOS can route around a
    // slow dimension. On a heavily skewed allocation it should not be
    // slower than the analytical multi-rail AG time.
    Network net = topo::threeDTorus();
    BwConfig bw{280.0, 10.0, 10.0};
    TacosSynthesizer tacos(net, bw);
    Bytes total = 64e6; // 1 MB per NPU.
    TacosResult r = tacos.synthesizeAllGather(total / 64.0, 1);

    auto spans = mapGroupToDims(net, 1, net.npus());
    Seconds rail =
        multiRailTime(CollectiveType::AllGather, total, spans, bw).time;
    EXPECT_LE(r.time, rail * 1.05);
}

TEST(Tacos, AllReduceIsTwiceAllGather)
{
    Network net = topo::threeDTorus();
    TacosSynthesizer tacos(net, net.equalBw(900.0));
    Bytes total = 1e9;
    int chunks = 8;
    TacosResult ag =
        tacos.synthesizeAllGather(total / chunks / 64.0, chunks);
    TacosResult ar = tacos.synthesizeAllReduce(total, chunks);
    EXPECT_NEAR(ar.time, 2.0 * ag.time, 1e-9);
    EXPECT_EQ(ar.transfers, 2 * ag.transfers);
}

TEST(Tacos, MoreChunksPipelineBetter)
{
    Network net = topo::threeDTorus();
    TacosSynthesizer tacos(net, net.equalBw(900.0));
    TacosResult coarse = tacos.synthesizeAllReduce(1e9, 1);
    TacosResult fine = tacos.synthesizeAllReduce(1e9, 8);
    EXPECT_LE(fine.time, coarse.time * 1.01);
}

TEST(Tacos, SwitchTopologySynthesizes)
{
    Network net = Network::parse("SW(8)");
    TacosSynthesizer tacos(net, {50.0});
    TacosResult r = tacos.synthesizeAllGather(1e6, 1);
    // Lower bound: each NPU must receive 7 chunks through one downlink.
    Seconds lower = transferTime(7e6, 50.0);
    EXPECT_GE(r.time, lower * 0.999);
    EXPECT_LE(r.time, lower * 2.0);
}

TEST(Tacos, DeterministicAcrossRuns)
{
    Network net = topo::threeDTorus();
    TacosSynthesizer tacos(net, {100.0, 150.0, 50.0});
    TacosResult a = tacos.synthesizeAllGather(2e6, 2);
    TacosResult b = tacos.synthesizeAllGather(2e6, 2);
    EXPECT_DOUBLE_EQ(a.time, b.time);
    EXPECT_EQ(a.transfers, b.transfers);
}

TEST(Tacos, LatencyIncreasesTime)
{
    Network net = Network::parse("RI(4)_RI(4)");
    TacosSynthesizer fast(net, net.equalBw(100.0), 0.0);
    TacosSynthesizer slow(net, net.equalBw(100.0), 1e-5);
    EXPECT_LT(fast.synthesizeAllGather(1e6, 1).time,
              slow.synthesizeAllGather(1e6, 1).time);
}

/** Property: synthesis always completes on mixed topologies. */
class TacosShapes : public ::testing::TestWithParam<const char*>
{};

TEST_P(TacosShapes, Completes)
{
    Network net = Network::parse(GetParam());
    TacosSynthesizer tacos(net, net.equalBw(120.0));
    TacosResult r = tacos.synthesizeAllGather(1e5, 1);
    EXPECT_GT(r.time, 0.0);
    long n = net.npus();
    EXPECT_GE(r.transfers, n * (n - 1) / 2);
}

INSTANTIATE_TEST_SUITE_P(Shapes, TacosShapes,
                         ::testing::Values("RI(2)_SW(2)", "FC(4)_RI(2)",
                                           "SW(4)_SW(2)", "RI(3)_FC(3)",
                                           "RI(4)_FC(2)_SW(2)"));

} // namespace
} // namespace libra
