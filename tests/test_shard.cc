/**
 * @file
 * Sharded-execution and checkpoint tests (docs/SHARDING.md).
 *
 * The slot map and checkpoint manifest are tested in-process; the
 * worker protocol is tested end to end by spawning the real libra_cli
 * binary (LIBRA_CLI_PATH, injected by CMake) and comparing its matrix
 * JSON byte for byte across worker counts, cache states, and a
 * kill-mid-run resume.
 */

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "core/estimator.hh"
#include "core/study_config.hh"
#include "study/cache.hh"
#include "study/checkpoint.hh"
#include "study/shard.hh"

namespace libra {
namespace {

LibraInputs
miniInputs(const char* extra = "")
{
    std::string text = "NETWORK SW(4)_RI(4)\nTOTAL_BW 200\n"
                       "STARTS 2\nWORKLOAD resnet50\n";
    text += extra;
    return parseStudyConfigString(text);
}

std::string
freshDir(const char* name)
{
    std::string dir = testing::TempDir() + name;
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    return dir;
}

// --- Slot map ----------------------------------------------------------

TEST(SlotMap, DedupsByContentAndGivesUncacheablePointsPrivateSlots)
{
    std::vector<LibraInputs> points;
    points.push_back(miniInputs());
    points.push_back(miniInputs("SEED 5\n"));
    points.push_back(miniInputs()); // Content-equal to points[0].
    LibraInputs custom = miniInputs();
    custom.config.estimator.commTimeFn =
        [](CollectiveType, Bytes, const std::vector<DimSpan>&,
           const BwConfig&, bool) { return CollectiveTiming{}; };
    points.push_back(custom); // No content identity: private slot.
    points.push_back(custom); // ...and a second private slot.

    SlotMap map = buildSlotMap(points);
    ASSERT_EQ(map.slotOf.size(), 5u);
    EXPECT_EQ(map.slots(), 4u);
    EXPECT_EQ(map.slotOf[0], map.slotOf[2]);
    EXPECT_NE(map.slotOf[0], map.slotOf[1]);
    EXPECT_NE(map.slotOf[3], map.slotOf[4]); // Privates never merge.
    EXPECT_TRUE(map.slotKey[map.slotOf[3]].empty());
    EXPECT_EQ(map.slotKey[map.slotOf[0]],
              canonicalStudyKey(points[0]));
    EXPECT_EQ(map.slotRep[map.slotOf[2]], 0u);
}

TEST(SlotMap, FingerprintIsStableAndOrderSensitive)
{
    std::vector<LibraInputs> points;
    points.push_back(miniInputs());
    points.push_back(miniInputs("SEED 5\n"));

    std::string fp = slotMapFingerprint(buildSlotMap(points));
    EXPECT_EQ(fp.size(), 16u);
    EXPECT_EQ(fp, slotMapFingerprint(buildSlotMap(points)));

    std::swap(points[0], points[1]); // Same content, new order.
    EXPECT_NE(fp, slotMapFingerprint(buildSlotMap(points)));
}

// --- Checkpoint manifest -----------------------------------------------

TEST(Checkpoint, AppendedHashesSurviveReopen)
{
    std::string dir = freshDir("libra-ckpt-a");
    std::string path = dir + "/manifest";
    {
        CheckpointLog log(path);
        EXPECT_EQ(log.resumedSlots(), 0u);
        log.append(0x1234u);
        log.append(0xabcdef0123456789u);
        log.append(0x1234u); // Idempotent.
        EXPECT_TRUE(log.contains(0x1234u));
        EXPECT_FALSE(log.contains(0x9999u));
    }
    CheckpointLog log(path);
    EXPECT_EQ(log.resumedSlots(), 2u);
    EXPECT_TRUE(log.contains(0x1234u));
    EXPECT_TRUE(log.contains(0xabcdef0123456789u));
    std::filesystem::remove_all(dir);
}

TEST(Checkpoint, TornTailIsSkippedWrongHeaderIsFatal)
{
    std::string dir = freshDir("libra-ckpt-b");

    // A kill -9 mid-append leaves a torn last line; everything before
    // it must still resume.
    std::string torn = dir + "/torn";
    {
        std::ofstream f(torn);
        f << "libra-checkpoint-v1\n"
          << "00000000000000aa\n"
          << "00000000000000"; // Truncated mid-hash.
    }
    CheckpointLog log(torn);
    EXPECT_EQ(log.resumedSlots(), 1u);
    EXPECT_TRUE(log.contains(0xaau));

    // A file that is not a manifest must never be appended to.
    std::string other = dir + "/other";
    {
        std::ofstream f(other);
        f << "{\"some\": \"json\"}\n";
    }
    EXPECT_THROW(CheckpointLog bad(other), FatalError);

    std::filesystem::remove_all(dir);
}

// --- End to end through libra_cli --------------------------------------

#ifdef LIBRA_CLI_PATH

/** Run `libra_cli run-matrix <args>`; returns the exit code. */
int
runCli(const std::string& args, const std::string& stderrPath = "")
{
    std::string cmd = std::string(LIBRA_CLI_PATH) + " run-matrix " +
                      args + " 2>" +
                      (stderrPath.empty() ? "/dev/null" : stderrPath);
    int status = std::system(cmd.c_str());
    return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
}

std::string
slurp(const std::string& path)
{
    std::ifstream f(path);
    std::ostringstream os;
    os << f.rdbuf();
    return os.str();
}

/** Hash lines recorded in a manifest (total lines minus the header). */
std::size_t
recordedSlots(const std::string& manifest)
{
    std::ifstream f(manifest);
    std::string line;
    std::size_t lines = 0;
    while (std::getline(f, line))
        ++lines;
    return lines > 0 ? lines - 1 : 0;
}

// The scenario the e2e tests shard: big enough for several batches
// per worker, small enough for smoke-test wall clock.
constexpr const char* kScenario = "explore-frontier";

TEST(ShardCli, WorkerCountsEmitByteIdenticalMatrixJson)
{
    std::string dir = freshDir("libra-shard-e2e");
    std::string ref = dir + "/ref.json";
    ASSERT_EQ(runCli(std::string(kScenario) + " --emit json --out " +
                     ref),
              0);
    const std::string expected = slurp(ref);
    ASSERT_FALSE(expected.empty());

    // Fresh sharded runs at several worker counts (1 = classic path).
    for (const char* workers : {"1", "2", "4"}) {
        std::string out = dir + "/w" + workers + ".json";
        ASSERT_EQ(runCli(std::string(kScenario) + " --workers " +
                         workers + " --emit json --out " + out),
                  0)
            << "workers=" << workers;
        EXPECT_EQ(slurp(out), expected) << "workers=" << workers;
    }

    // Sharded against a cold then a warm cache: still the same bytes.
    std::string cache = dir + "/cache";
    for (const char* label : {"cold", "warm"}) {
        std::string out = dir + "/cache-" + label + ".json";
        ASSERT_EQ(runCli(std::string(kScenario) +
                         " --workers 2 --cache-dir " + cache +
                         " --emit json --out " + out),
                  0)
            << label;
        EXPECT_EQ(slurp(out), expected) << label;
    }

    std::filesystem::remove_all(dir);
}

TEST(ShardCli, KilledCheckpointedRunResumesWithoutRecompute)
{
    std::string dir = freshDir("libra-shard-kill");
    std::string ref = dir + "/ref.json";
    ASSERT_EQ(runCli(std::string(kScenario) + " --emit json --out " +
                     ref),
              0);
    const std::string expected = slurp(ref);

    std::string cache = dir + "/cache";
    std::string manifest = dir + "/manifest";

    // Start a checkpointed run and SIGKILL it once the manifest shows
    // real progress — no cooperation from the victim.
    pid_t pid = ::fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
        std::string out = dir + "/killed.json";
        ::execl(LIBRA_CLI_PATH, LIBRA_CLI_PATH, "run-matrix",
                kScenario, "--cache-dir", cache.c_str(),
                "--checkpoint", manifest.c_str(), "--emit", "json",
                "--out", out.c_str(), static_cast<char*>(nullptr));
        _exit(127);
    }
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::seconds(60);
    bool killed = false;
    while (std::chrono::steady_clock::now() < deadline) {
        if (recordedSlots(manifest) >= 8) {
            ::kill(pid, SIGKILL);
            killed = true;
            break;
        }
        int status = 0;
        if (::waitpid(pid, &status, WNOHANG) == pid) {
            pid = -1; // Finished before we could kill it (slow FS
                      // poll): resume still must be byte-identical.
            break;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    if (pid > 0) {
        if (!killed)
            ::kill(pid, SIGKILL);
        int status = 0;
        ::waitpid(pid, &status, 0);
    }
    const std::size_t recorded = recordedSlots(manifest);
    ASSERT_GE(recorded, 8u);

    // Resume: recorded slots must come from the cache, not recompute,
    // and the completed output must be byte-identical to the
    // uninterrupted reference.
    std::string out = dir + "/resumed.json";
    std::string err = dir + "/resumed.err";
    ASSERT_EQ(runCli(std::string(kScenario) + " --cache-dir " + cache +
                     " --checkpoint " + manifest +
                     " --emit json --out " + out,
                     err),
              0);
    EXPECT_EQ(slurp(out), expected);

    const std::string provenance = slurp(err);
    EXPECT_NE(provenance.find("checkpoint: resuming"),
              std::string::npos)
        << provenance;
    // "matrix: ... (80 unique, N from cache, M computed)" — every
    // recorded slot is served from the cache, never recomputed. The
    // cache may hold at most a few slots more than the manifest
    // (store-before-append), so N >= recorded, not ==.
    const std::string tag = " unique, ";
    auto pos = provenance.find(tag);
    ASSERT_NE(pos, std::string::npos) << provenance;
    std::size_t fromCache =
        std::strtoull(provenance.c_str() + pos + tag.size(), nullptr,
                      10);
    EXPECT_GE(fromCache, recorded) << provenance;

    std::filesystem::remove_all(dir);
}

TEST(ShardCli, ShardingWithoutScenarioOverridesMatchesCheckpointedRun)
{
    // Sharded *and* checkpointed in one run: the manifest must end up
    // complete and a rerun must be served entirely from the cache.
    std::string dir = freshDir("libra-shard-ckpt");
    std::string cache = dir + "/cache";
    std::string manifest = dir + "/manifest";
    std::string out1 = dir + "/one.json";
    std::string out2 = dir + "/two.json";
    std::string err = dir + "/two.err";

    ASSERT_EQ(runCli(std::string(kScenario) +
                     " --workers 2 --cache-dir " + cache +
                     " --checkpoint " + manifest +
                     " --emit json --out " + out1),
              0);
    EXPECT_EQ(recordedSlots(manifest), 80u);

    ASSERT_EQ(runCli(std::string(kScenario) + " --cache-dir " + cache +
                     " --checkpoint " + manifest +
                     " --emit json --out " + out2,
                     err),
              0);
    EXPECT_EQ(slurp(out1), slurp(out2));
    EXPECT_NE(slurp(err).find("80 from cache"), std::string::npos);

    std::filesystem::remove_all(dir);
}

TEST(ShardCli, CheckpointWithoutACacheIsAUserError)
{
    std::string dir = freshDir("libra-shard-nocache");
    EXPECT_EQ(runCli(std::string(kScenario) + " --checkpoint " + dir +
                     "/manifest --emit json --out /dev/null"),
              1);
    std::filesystem::remove_all(dir);
}

TEST(ShardCli, CheckpointChunkFlagIsValidatedAndPreservesBytes)
{
    std::string dir = freshDir("libra-shard-chunk");
    std::string cache = dir + "/cache";
    std::string manifest = dir + "/manifest";

    // The flag only means something under --checkpoint; out-of-range
    // sizes are rejected at parse time.
    EXPECT_EQ(runCli(std::string(kScenario) +
                     " --checkpoint-chunk 4 --emit json --out "
                     "/dev/null"),
              1);
    EXPECT_EQ(runCli(std::string(kScenario) + " --cache-dir " + cache +
                     " --checkpoint " + manifest +
                     " --checkpoint-chunk 0 --emit json --out "
                     "/dev/null"),
              1);
    EXPECT_EQ(runCli(std::string(kScenario) + " --cache-dir " + cache +
                     " --checkpoint " + manifest +
                     " --checkpoint-chunk 9999 --emit json --out "
                     "/dev/null"),
              1);

    // A small chunk changes the fsync cadence, never the bytes or the
    // completed manifest.
    std::string ref = dir + "/ref.json";
    std::string out = dir + "/chunked.json";
    ASSERT_EQ(runCli(std::string(kScenario) + " --emit json --out " +
                     ref),
              0);
    ASSERT_EQ(runCli(std::string(kScenario) + " --cache-dir " + cache +
                     " --checkpoint " + manifest +
                     " --checkpoint-chunk 2 --emit json --out " + out),
              0);
    EXPECT_EQ(slurp(out), slurp(ref));
    EXPECT_EQ(recordedSlots(manifest), 80u);

    std::filesystem::remove_all(dir);
}

// --- Sharded adaptive exploration (eval frames) -------------------------

TEST(ShardCli, AdaptivePruneByteIdenticalAcrossWorkerCounts)
{
    std::string dir = freshDir("libra-shard-prune");
    std::string ref = dir + "/ref.json";
    ASSERT_EQ(runCli(std::string(kScenario) +
                     " --explore prune --emit json --out " + ref),
              0);
    const std::string expected = slurp(ref);
    ASSERT_FALSE(expected.empty());

    // Fresh sharded prune at several worker counts: the adaptive
    // rounds cross the wire as eval frames, the emitted bytes must
    // not notice.
    for (const char* workers : {"1", "2", "4"}) {
        std::string out = dir + "/w" + workers + ".json";
        ASSERT_EQ(runCli(std::string(kScenario) +
                         " --explore prune --workers " + workers +
                         " --emit json --out " + out),
                  0)
            << "workers=" << workers;
        EXPECT_EQ(slurp(out), expected) << "workers=" << workers;
    }

    // Cold cache (workers store through the master), then warm cache
    // (every adaptive round served without touching the pool).
    std::string cache = dir + "/cache";
    for (const char* label : {"cold", "warm"}) {
        std::string out = dir + "/cache-" + label + ".json";
        std::string err = dir + "/cache-" + label + ".err";
        ASSERT_EQ(runCli(std::string(kScenario) +
                         " --explore prune --workers 2 --cache-dir " +
                         cache + " --emit json --out " + out,
                         err),
                  0)
            << label;
        EXPECT_EQ(slurp(out), expected) << label;
        if (std::string(label) == "warm") {
            EXPECT_NE(slurp(err).find(" 0 computed"),
                      std::string::npos)
                << slurp(err);
        }
    }

    std::filesystem::remove_all(dir);
}

TEST(ShardCli, KilledShardedAdaptivePruneResumes)
{
    std::string dir = freshDir("libra-shard-prune-kill");
    std::string ref = dir + "/ref.json";
    ASSERT_EQ(runCli(std::string(kScenario) +
                     " --explore prune --emit json --out " + ref),
              0);
    const std::string expected = slurp(ref);

    std::string cache = dir + "/cache";
    std::string manifest = dir + "/manifest";

    // SIGKILL a sharded, checkpointed prune run mid-flight — slots
    // completed by eval frames must already be in cache + manifest.
    pid_t pid = ::fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
        std::string out = dir + "/killed.json";
        ::execl(LIBRA_CLI_PATH, LIBRA_CLI_PATH, "run-matrix",
                kScenario, "--explore", "prune", "--workers", "2",
                "--cache-dir", cache.c_str(), "--checkpoint",
                manifest.c_str(), "--emit", "json", "--out",
                out.c_str(), static_cast<char*>(nullptr));
        _exit(127);
    }
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::seconds(60);
    while (std::chrono::steady_clock::now() < deadline) {
        if (recordedSlots(manifest) >= 8) {
            ::kill(pid, SIGKILL);
            break;
        }
        int status = 0;
        if (::waitpid(pid, &status, WNOHANG) == pid) {
            pid = -1; // Finished first; resume must still be exact.
            break;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    if (pid > 0) {
        ::kill(pid, SIGKILL);
        int status = 0;
        ::waitpid(pid, &status, 0);
    }
    const std::size_t recorded = recordedSlots(manifest);
    ASSERT_GE(recorded, 8u);

    // Resume sharded: recorded slots come from the cache, and the
    // completed output is byte-identical to the uninterrupted
    // single-process reference.
    std::string out = dir + "/resumed.json";
    std::string err = dir + "/resumed.err";
    ASSERT_EQ(runCli(std::string(kScenario) +
                     " --explore prune --workers 2 --cache-dir " +
                     cache + " --checkpoint " + manifest +
                     " --emit json --out " + out,
                     err),
              0);
    EXPECT_EQ(slurp(out), expected);

    const std::string provenance = slurp(err);
    EXPECT_NE(provenance.find("checkpoint: resuming"),
              std::string::npos)
        << provenance;

    std::filesystem::remove_all(dir);
}

TEST(ShardPoolEval, WarmPoolServesEvalFramesAndRequeuesOnWorkerDeath)
{
    // A pool handshaken over an empty recipe is a pure eval-frame
    // server: nothing in the shared batch, everything over the wire.
    ShardOptions options;
    options.workers = 2;
    options.workerExe = LIBRA_CLI_PATH;
    SlotMap empty = buildSlotMap(std::vector<LibraInputs>{});
    ShardPool pool(options, empty.slots(), slotMapFingerprint(empty));
    ASSERT_EQ(pool.liveWorkers(), 2u);

    auto makeRound = [](int seedBase, std::size_t count) {
        std::vector<LibraInputs> round;
        for (std::size_t k = 0; k < count; ++k)
            round.push_back(miniInputs(
                ("SEED " + std::to_string(seedBase + int(k)) + "\n")
                    .c_str()));
        return round;
    };
    auto runRound = [&pool](const std::vector<LibraInputs>& round) {
        // Sparse, caller-chosen indices, as the adaptive sweep uses.
        std::vector<WirePoint> wire;
        for (std::size_t k = 0; k < round.size(); ++k) {
            WirePoint wp;
            wp.index = 2 * k + 1;
            wp.text = studyConfigToString(round[k]);
            wp.key = pointWireKey(round[k]);
            wire.push_back(std::move(wp));
        }
        std::map<std::size_t, std::string> got;
        pool.evaluatePoints(
            wire, [&](std::size_t slot, PointStatus status,
                      LibraReport report) {
                EXPECT_TRUE(status.ok) << status.error;
                EXPECT_TRUE(
                    got.emplace(slot, reportToJson(report).dump())
                        .second)
                    << "item " << slot << " delivered twice";
            });
        return got;
    };
    auto expectMatchesInProcess =
        [](const std::map<std::size_t, std::string>& got,
           const std::vector<LibraInputs>& round) {
            SweepOutcome ref = runLibraSweepIsolated(round);
            ASSERT_EQ(got.size(), round.size());
            for (std::size_t k = 0; k < round.size(); ++k)
                EXPECT_EQ(got.at(2 * k + 1),
                          reportToJson(ref.reports[k]).dump())
                    << "point " << k;
        };

    // Round 1: eval frames come back bit-identical to in-process.
    std::vector<LibraInputs> round1 = makeRound(100, 6);
    expectMatchesInProcess(runRound(round1), round1);

    // Kill one worker between rounds; the next round's batches that
    // land on the corpse get requeued to the survivor, and the warm
    // pool still delivers every result.
    std::vector<pid_t> pids = pool.workerPids();
    ASSERT_EQ(pids.size(), 2u);
    ::kill(pids.front(), SIGKILL);
    std::this_thread::sleep_for(std::chrono::milliseconds(50));

    std::vector<LibraInputs> round2 = makeRound(200, 6);
    expectMatchesInProcess(runRound(round2), round2);
    EXPECT_EQ(pool.liveWorkers(), 1u);

    pool.shutdown();
}

#endif // LIBRA_CLI_PATH

} // namespace
} // namespace libra
