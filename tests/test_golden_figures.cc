/**
 * @file
 * Golden-figure regression suite: pins the headline reproduced metrics
 * against checked-in golden files so future performance/refactoring
 * PRs cannot silently drift off the paper's results.
 *
 * Pinned scenarios (goldenScenarioNames()):
 *  - tbl1:  Table I cost rows + the Fig. 12 worked example ($1,722)
 *  - fig10: Fig. 10 BW-utilization and speedup metrics
 *  - fig13: Fig. 13 speedups over EqualBW
 *  - fig14: Fig. 14 perf-per-cost gains
 *
 * Golden files live in tests/golden/<scenario>.json (path baked in via
 * LIBRA_GOLDEN_DIR). Regenerate after an intentional result change:
 *
 *     build/libra_cli run-matrix golden --update-golden \
 *         --golden-dir tests/golden
 *
 * Comparison is per metric with the tolerance table below. The engine
 * itself is bit-deterministic at any thread count, so the tolerances
 * only absorb cross-platform floating-point variation (libm/compiler);
 * analytic dollar metrics are held an order of magnitude tighter.
 */

#include <cmath>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "study/matrix.hh"

#ifndef LIBRA_GOLDEN_DIR
#define LIBRA_GOLDEN_DIR "tests/golden"
#endif

namespace libra {
namespace {

struct Tolerance
{
    double rel = 0.0;
    double abs = 0.0;
};

/** Per-metric tolerance; keyed by metric name. */
Tolerance
toleranceFor(const std::string& metric)
{
    // Closed-form dollar/cost metrics (Table I, Fig. 12): no search or
    // iteration involved, so essentially exact.
    for (const char* exact : {"link", "switch", "nic", "links",
                              "switches", "nics", "total",
                              "fig12_total", "fig12_matches_paper"}) {
        if (metric == exact)
            return {1e-9, 1e-9};
    }
    // Utilization percentages compare on an absolute scale.
    if (metric == "bw_util_pct")
        return {0.0, 1e-4};
    // Search-derived metrics (speedups, ppc gains, runtimes).
    return {1e-6, 1e-12};
}

std::string
goldenPath(const std::string& name)
{
    return std::string(LIBRA_GOLDEN_DIR) + "/" + name + ".json";
}

const char* kRegenHint =
    "\nRegenerate after an intentional change with:\n"
    "  build/libra_cli run-matrix golden --update-golden "
    "--golden-dir tests/golden\n";

Json
loadGolden(const std::string& name)
{
    std::ifstream file(goldenPath(name));
    if (!file) {
        ADD_FAILURE() << "missing golden file " << goldenPath(name)
                      << kRegenHint;
        return Json();
    }
    std::ostringstream text;
    text << file.rdbuf();
    return Json::parse(text.str());
}

/** Named (label, metric) pairs of one golden/actual row for messages. */
std::string
rowId(const Json& row)
{
    std::string id;
    for (const auto& [k, v] : row.at("labels").members())
        id += k + "=" + v.asString() + " ";
    return id;
}

void
compareMetrics(const std::string& scenario, const std::string& where,
               const Json& golden, const Json& actual)
{
    ASSERT_EQ(golden.members().size(), actual.members().size())
        << scenario << " " << where << ": metric set changed"
        << kRegenHint;
    for (const auto& [name, goldenValue] : golden.members()) {
        ASSERT_TRUE(actual.has(name))
            << scenario << " " << where << ": metric '" << name
            << "' disappeared" << kRegenHint;
        Tolerance tol = toleranceFor(name);
        double want = goldenValue.asNumber();
        double got = actual.at(name).asNumber();
        EXPECT_NEAR(got, want, std::abs(want) * tol.rel + tol.abs)
            << scenario << " " << where << ": metric '" << name
            << "' drifted from the pinned value" << kRegenHint;
    }
}

class GoldenFigures : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        setInformEnabled(false);
        // One uncached run of the whole golden set; fig13/fig14 share
        // their design-point grid inside the batch.
        result_ = new MatrixResult(
            runScenarioMatrix(goldenScenarioNames()));
    }

    static void
    TearDownTestSuite()
    {
        delete result_;
        result_ = nullptr;
    }

    static const ScenarioRun*
    runOf(const std::string& name)
    {
        for (const ScenarioRun& run : result_->scenarios) {
            if (run.name == name)
                return &run;
        }
        return nullptr;
    }

    static MatrixResult* result_;
};

MatrixResult* GoldenFigures::result_ = nullptr;

TEST_F(GoldenFigures, PinnedScenariosMatchGoldenFiles)
{
    for (const auto& name : goldenScenarioNames()) {
        SCOPED_TRACE(name);
        Json golden = loadGolden(name);
        if (golden.isNull())
            continue; // Missing file already failed above.
        const ScenarioRun* run = runOf(name);
        ASSERT_NE(run, nullptr);
        Json actual = scenarioRunToJson(*run);

        const auto& goldenRows = golden.at("rows").items();
        const auto& actualRows = actual.at("rows").items();
        ASSERT_EQ(goldenRows.size(), actualRows.size())
            << name << ": row count changed" << kRegenHint;
        for (std::size_t i = 0; i < goldenRows.size(); ++i) {
            // Labels are identity: they must match exactly.
            ASSERT_EQ(goldenRows[i].at("labels").dump(),
                      actualRows[i].at("labels").dump())
                << name << " row " << i << " ("
                << rowId(goldenRows[i]) << "): labels changed"
                << kRegenHint;
            compareMetrics(name, "row " + rowId(goldenRows[i]),
                           goldenRows[i].at("metrics"),
                           actualRows[i].at("metrics"));
        }
        compareMetrics(name, "summary", golden.at("summary"),
                       actual.at("summary"));
    }
}

TEST_F(GoldenFigures, HeadlineClaimsHold)
{
    // Independent of the pinned values: the paper's qualitative claims
    // must hold on the freshly computed reports.
    const ScenarioRun* fig13 = runOf("fig13");
    ASSERT_NE(fig13, nullptr);
    for (const ScenarioRow& row : fig13->output.rows) {
        for (const auto& [k, v] : row.metrics) {
            if (k == "speedup_perfopt") {
                EXPECT_GE(v, 1.0 - 1e-9) << "PerfOpt slower than "
                                            "EqualBW";
            }
        }
    }

    const ScenarioRun* fig14 = runOf("fig14");
    ASSERT_NE(fig14, nullptr);
    for (const ScenarioRow& row : fig14->output.rows) {
        for (const auto& [k, v] : row.metrics) {
            if (k == "ppc_gain_perfpercost") {
                EXPECT_GT(v, 1.0) << "PerfPerCostOpt lost to EqualBW "
                                     "on perf-per-cost";
            }
        }
    }

    const ScenarioRun* tbl1 = runOf("tbl1");
    ASSERT_NE(tbl1, nullptr);
    for (const auto& [k, v] : tbl1->output.summary) {
        if (k == "fig12_matches_paper") {
            EXPECT_EQ(v, 1.0) << "Fig. 12 worked example no longer "
                                 "matches $1,722";
        }
    }
}

} // namespace
} // namespace libra
