/**
 * @file
 * The point wire codec (src/study/shard.hh): design points ship to
 * shard workers as serialized study files plus a canonical-key hash.
 * Two properties carry the whole scheme:
 *
 *  1. Round-trip key identity — for every serializable study,
 *     `LibraInputs -> studyConfigToString -> parseStudyConfigString`
 *     reproduces the exact canonicalStudyKey (and thus pointWireKey),
 *     so a worker's cache writes land under the master's keys and the
 *     skew check (reparse-key vs. frame-key) passes iff both sides
 *     agree on the study language.
 *
 *  2. Malformed frames are rejected loudly — parseEvalPayload fatals
 *     on every structural violation instead of guessing, because a
 *     silently mis-parsed point would poison the shared cache.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/json.hh"
#include "common/logging.hh"
#include "core/study_config.hh"
#include "study/cache.hh"
#include "study/shard.hh"

namespace libra {
namespace {

/**
 * Directive corpus for the wire fuzz — mirrors the round-trip corpus
 * in test_study_roundtrip.cc, with emphasis on the knobs adaptive
 * exploration actually perturbs (SEED, STARTS, MAX_EVALS, SOLVER,
 * EXPLORE) since those are what cross the wire during prune rounds.
 */
const char* kWireCorpus[] = {
    "NETWORK RI(4)_SW(8)\nWORKLOAD resnet50\n",
    "NETWORK RI(16)_FC(8)_SW(32)\n"
    "TOTAL_BW 400\n"
    "OBJECTIVE PERF_PER_COST\n"
    "LOOP TP_DP_OVERLAP\n"
    "WORKLOAD gpt3\n",
    "NETWORK RI(4)_FC(8)_RI(4)_SW(32)\n"
    "TOTAL_BW 500\n"
    "CONSTRAINT B4 <= 50\n"
    "CONSTRAINT B1 >= B2\n"
    "WORKLOAD turing-nlg\n",
    "NETWORK RI(16)_FC(8)_SW(32)\n"
    "WORKLOAD gpt3 WEIGHT 2.5\n"
    "WORKLOAD msft1t WEIGHT 0.125\n"
    "WORKLOAD dlrm\n"
    "NORMALIZE_WEIGHTS\n",
    "NETWORK FC(8)_RI(16)_SW(8)\n"
    "IN_NETWORK\n"
    "SEED 7\n"
    "STARTS 5\n"
    "WORKLOAD msft1t\n",
    // The prune-screening shape: tightened budget, single start.
    "NETWORK RI(4)_SW(8)\n"
    "STARTS 1\n"
    "MAX_EVALS 120\n"
    "SOLVER cmaes\n"
    "WORKLOAD resnet50\n",
    "NETWORK RI(4)_SW(8)\n"
    "MAX_EVALS 240\n"
    "EXPLORE prune,keep=0.25\n"
    "WORKLOAD resnet50\n",
    "NETWORK RI(4)_SW(4)_SW(8)_SW(16)\n"
    "TOTAL_BW 800\n"
    "DOLLAR_CAP 1.5e7\n"
    "THREADS 8\n"
    "WORKLOAD msft1t WEIGHT 1.0\n",
    "NETWORK RI(4)_SW(8)\n"
    "SOLVER cmaes\n"
    "SOLVER de\n"
    "WORKLOAD resnet50\n",
    "NETWORK RI(4)_SW(8)\n"
    "BACKEND analytical\n"
    "SEED 1234567\n"
    "WORKLOAD dlrm\n",
};

WirePoint wireOf(const LibraInputs& inputs, std::size_t index)
{
    WirePoint wp;
    wp.index = index;
    wp.text = studyConfigToString(inputs);
    wp.key = pointWireKey(inputs);
    return wp;
}

/**
 * The property the shard layer's skew check and cache merging both
 * rest on: the wire text reparses to the identical canonical key.
 */
TEST(PointWire, RoundTripPreservesCanonicalKey)
{
    for (const char* text : kWireCorpus) {
        LibraInputs parsed = parseStudyConfigString(text);
        ASSERT_TRUE(studyConfigSerializable(parsed)) << text;

        WirePoint wp = wireOf(parsed, 0);
        LibraInputs reparsed = parseStudyConfigString(wp.text);

        EXPECT_EQ(canonicalStudyKey(parsed), canonicalStudyKey(reparsed))
            << text;
        EXPECT_EQ(pointWireKey(reparsed), wp.key) << text;
    }
}

TEST(PointWire, KeyIsSixteenLowercaseHexDigits)
{
    for (const char* text : kWireCorpus) {
        const std::string key =
            pointWireKey(parseStudyConfigString(text));
        ASSERT_EQ(key.size(), 16u) << text;
        for (char c : key)
            EXPECT_TRUE((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f'))
                << text << " key " << key;
    }
}

TEST(PointWire, DistinctStudiesGetDistinctKeys)
{
    std::vector<std::string> keys;
    for (const char* text : kWireCorpus)
        keys.push_back(pointWireKey(parseStudyConfigString(text)));
    for (std::size_t i = 0; i < keys.size(); ++i)
        for (std::size_t j = i + 1; j < keys.size(); ++j)
            EXPECT_NE(keys[i], keys[j]) << i << " vs " << j;
}

TEST(PointWire, PayloadRoundTripsThroughJson)
{
    std::vector<WirePoint> points;
    std::size_t index = 3; // Sparse, unordered indices are legal:
    for (const char* text : kWireCorpus) {
        points.push_back(wireOf(parseStudyConfigString(text), index));
        index = index * 2 + 1;
    }

    // Through a dump/parse cycle, as the frame bytes actually travel.
    Json body = Json::parse(evalPayloadJson(points).dump());
    std::vector<WirePoint> back = parseEvalPayload(body);

    ASSERT_EQ(back.size(), points.size());
    for (std::size_t k = 0; k < points.size(); ++k) {
        EXPECT_EQ(back[k].index, points[k].index);
        EXPECT_EQ(back[k].text, points[k].text);
        EXPECT_EQ(back[k].key, points[k].key);
    }
}

TEST(PointWire, EmptyPayloadRoundTrips)
{
    EXPECT_TRUE(
        parseEvalPayload(evalPayloadJson({})).empty());
}

/** One syntactically valid entry, for corruption below. */
Json goodPayload()
{
    LibraInputs inputs = parseStudyConfigString(
        "NETWORK RI(4)_SW(8)\nMAX_EVALS 16\nWORKLOAD resnet50\n");
    return evalPayloadJson({wireOf(inputs, 2)});
}

TEST(PointWire, MalformedPayloadsAreRejected)
{
    // Not an object / missing or mistyped "points".
    EXPECT_THROW(parseEvalPayload(Json::parse("[]")), FatalError);
    EXPECT_THROW(parseEvalPayload(Json::parse("{}")), FatalError);
    EXPECT_THROW(parseEvalPayload(Json::parse("{\"points\": 3}")),
                 FatalError);
    EXPECT_THROW(parseEvalPayload(Json::parse("{\"points\": {}}")),
                 FatalError);

    // Entries that are not objects.
    EXPECT_THROW(parseEvalPayload(Json::parse("{\"points\": [1]}")),
                 FatalError);
    EXPECT_THROW(
        parseEvalPayload(Json::parse("{\"points\": [\"study\"]}")),
        FatalError);

    // Field-level corruption of an otherwise valid entry.
    auto corrupt = [](const char* field, const char* jsonValue) {
        Json body = goodPayload();
        std::string text = body.dump();
        // Splice the replacement value in by re-dumping with the field
        // swapped; simplest is to rebuild via parse of edited text.
        Json entry = Json::parse(text).at("points").items()[0];
        std::string out = "{\"points\":[{";
        bool first = true;
        for (const auto& member : entry.members()) {
            if (!first)
                out += ",";
            first = false;
            out += "\"" + member.first + "\":";
            out += (member.first == field) ? jsonValue
                                           : member.second.dump();
        }
        out += "}]}";
        return Json::parse(out);
    };

    EXPECT_THROW(parseEvalPayload(corrupt("index", "\"0\"")), FatalError);
    EXPECT_THROW(parseEvalPayload(corrupt("index", "-1")), FatalError);
    EXPECT_THROW(parseEvalPayload(corrupt("index", "2.5")), FatalError);
    EXPECT_THROW(parseEvalPayload(corrupt("index", "1e300")), FatalError);

    EXPECT_THROW(parseEvalPayload(corrupt("point", "17")), FatalError);
    EXPECT_THROW(parseEvalPayload(corrupt("point", "\"\"")), FatalError);

    EXPECT_THROW(parseEvalPayload(corrupt("key", "17")), FatalError);
    EXPECT_THROW(parseEvalPayload(corrupt("key", "\"abc\"")), FatalError);
    EXPECT_THROW(parseEvalPayload(corrupt("key", "\"XYZ4567890abcdef\"")),
                 FatalError);
    EXPECT_THROW(
        parseEvalPayload(corrupt("key", "\"0123456789abcdef0\"")),
        FatalError);

    // Missing fields entirely.
    EXPECT_THROW(
        parseEvalPayload(Json::parse(
            "{\"points\":[{\"point\":\"x\",\"key\":"
            "\"0123456789abcdef\"}]}")),
        FatalError);
    EXPECT_THROW(
        parseEvalPayload(Json::parse(
            "{\"points\":[{\"index\":0,\"key\":"
            "\"0123456789abcdef\"}]}")),
        FatalError);
    EXPECT_THROW(parseEvalPayload(Json::parse(
                     "{\"points\":[{\"index\":0,\"point\":\"x\"}]}")),
                 FatalError);

    // The unmodified payload stays accepted (the corrupters above
    // would otherwise pass vacuously).
    EXPECT_EQ(parseEvalPayload(goodPayload()).size(), 1u);
}

/** A key from a *different* study must not match — skew detection. */
TEST(PointWire, KeyMismatchIsDetectableAfterReparse)
{
    LibraInputs a = parseStudyConfigString(
        "NETWORK RI(4)_SW(8)\nMAX_EVALS 16\nWORKLOAD resnet50\n");
    LibraInputs b = parseStudyConfigString(
        "NETWORK RI(4)_SW(8)\nMAX_EVALS 17\nWORKLOAD resnet50\n");

    WirePoint skewed = wireOf(a, 0);
    skewed.key = pointWireKey(b); // What a stale worker would compute.

    LibraInputs reparsed = parseStudyConfigString(skewed.text);
    EXPECT_NE(pointWireKey(reparsed), skewed.key);
}

} // namespace
} // namespace libra
