/**
 * @file
 * Tests for the analytical multi-rail collective model against the
 * closed forms given in paper §IV-C.
 */

#include <gtest/gtest.h>

#include "collective/multi_rail.hh"
#include "common/logging.hh"

namespace libra {
namespace {

constexpr Bytes kM = 1e9; // 1 GB collective.

std::vector<DimSpan>
spans2D(int n1, int n2)
{
    return {{0, n1}, {1, n2}};
}

TEST(MultiRail, AllReduce2DMatchesPaperFormula)
{
    // Paper: traffic = 2m(n1-1)/n1 and 2m(n2-1)/(n1 n2).
    int n1 = 3, n2 = 2;
    auto traffic =
        multiRailTraffic(CollectiveType::AllReduce, kM, spans2D(n1, n2));
    ASSERT_EQ(traffic.size(), 2u);
    EXPECT_NEAR(traffic[0], 2.0 * kM * (n1 - 1) / n1, 1.0);
    EXPECT_NEAR(traffic[1], 2.0 * kM * (n2 - 1) / (n1 * n2), 1.0);
}

TEST(MultiRail, ReduceScatterIsHalfAllReduce)
{
    auto ar =
        multiRailTraffic(CollectiveType::AllReduce, kM, spans2D(4, 8));
    auto rs = multiRailTraffic(CollectiveType::ReduceScatter, kM,
                               spans2D(4, 8));
    auto ag =
        multiRailTraffic(CollectiveType::AllGather, kM, spans2D(4, 8));
    for (std::size_t i = 0; i < ar.size(); ++i) {
        EXPECT_NEAR(rs[i], ar[i] / 2.0, 1e-6);
        EXPECT_NEAR(ag[i], ar[i] / 2.0, 1e-6);
    }
}

TEST(MultiRail, AllToAllHasNoPrefixReduction)
{
    // Paper: max(m(n1-1)/(n1 B1), m(n2-1)/(n2 B2)).
    int n1 = 4, n2 = 8;
    auto traffic =
        multiRailTraffic(CollectiveType::AllToAll, kM, spans2D(n1, n2));
    EXPECT_NEAR(traffic[0], kM * (n1 - 1) / n1, 1.0);
    EXPECT_NEAR(traffic[1], kM * (n2 - 1) / n2, 1.0);
}

TEST(MultiRail, TimeIsBottleneckDimension)
{
    // Equal BW: dim 1 carries far more traffic and must bottleneck.
    BwConfig bw{100.0, 100.0};
    auto t = multiRailTime(CollectiveType::AllReduce, kM, spans2D(4, 8),
                           bw);
    EXPECT_EQ(t.bottleneckSpan, 0u);
    EXPECT_NEAR(t.time, t.timePerDim[0], 1e-15);
    EXPECT_GT(t.timePerDim[0], t.timePerDim[1]);
}

TEST(MultiRail, BalancedBwEqualizesDimTimes)
{
    // BW proportional to traffic makes all dims finish together —
    // the Fig. 9(c) ideal allocation.
    auto traffic =
        multiRailTraffic(CollectiveType::AllReduce, kM, spans2D(4, 8));
    BwConfig bw{traffic[0] / 1e9, traffic[1] / 1e9}; // 1 second each.
    auto t = multiRailTime(CollectiveType::AllReduce, kM, spans2D(4, 8),
                           bw);
    EXPECT_NEAR(t.timePerDim[0], t.timePerDim[1], 1e-9);
    EXPECT_NEAR(t.time, 1.0, 1e-9);
}

TEST(MultiRail, ThreeDimPrefixProducts)
{
    // Fig. 9's 3D case: traffic falls by the prefix product per dim.
    std::vector<DimSpan> spans{{0, 4}, {1, 4}, {2, 4}};
    auto traffic =
        multiRailTraffic(CollectiveType::AllReduce, kM, spans);
    EXPECT_NEAR(traffic[0], 2.0 * kM * 3 / 4, 1.0);
    EXPECT_NEAR(traffic[1], 2.0 * kM * 3 / 16, 1.0);
    EXPECT_NEAR(traffic[2], 2.0 * kM * 3 / 64, 1.0);
}

TEST(MultiRail, SpanDimsIndexIntoFullBwVector)
{
    // A collective on dims {1, 3} of a 4D network reads B2 and B4.
    std::vector<DimSpan> spans{{1, 2}, {3, 32}};
    BwConfig bw{1.0, 100.0, 1.0, 5.0};
    auto t = multiRailTime(CollectiveType::AllReduce, kM, spans, bw);
    EXPECT_NEAR(t.timePerDim[0], transferTime(2.0 * kM * 1 / 2, 100.0),
                1e-12);
    EXPECT_NEAR(t.timePerDim[1],
                transferTime(2.0 * kM * 31 / 64, 5.0), 1e-12);
}

TEST(MultiRail, InNetworkAllReduceDropsTraffic)
{
    std::vector<DimSpan> spans{{0, 4}, {1, 8}};
    BwConfig bw{100.0, 100.0};
    auto normal =
        multiRailTime(CollectiveType::AllReduce, kM, spans, bw, false);
    auto offload =
        multiRailTime(CollectiveType::AllReduce, kM, spans, bw, true);
    // Paper: in-network time of dim i is m / (prefix * Bi).
    EXPECT_NEAR(offload.trafficPerDim[0], kM, 1.0);
    EXPECT_NEAR(offload.trafficPerDim[1], kM / 4.0, 1.0);
    EXPECT_LT(offload.time, normal.time);
}

TEST(MultiRail, InNetworkLeavesOtherCollectivesAlone)
{
    std::vector<DimSpan> spans{{0, 4}};
    BwConfig bw{100.0};
    auto a = multiRailTime(CollectiveType::AllGather, kM, spans, bw,
                           false);
    auto b =
        multiRailTime(CollectiveType::AllGather, kM, spans, bw, true);
    EXPECT_DOUBLE_EQ(a.time, b.time);
}

TEST(MultiRail, EmptySpansMeanNoCommunication)
{
    BwConfig bw{100.0};
    auto t = multiRailTime(CollectiveType::AllReduce, kM, {}, bw);
    EXPECT_DOUBLE_EQ(t.time, 0.0);
}

TEST(MultiRail, NonPositiveBwThrows)
{
    std::vector<DimSpan> spans{{0, 4}};
    EXPECT_THROW(
        multiRailTime(CollectiveType::AllReduce, kM, spans, {0.0}),
        FatalError);
}

TEST(MultiRail, TotalTrafficSums)
{
    auto spans = spans2D(4, 8);
    auto per = multiRailTraffic(CollectiveType::AllReduce, kM, spans);
    EXPECT_NEAR(totalTraffic(CollectiveType::AllReduce, kM, spans),
                per[0] + per[1], 1e-6);
}

TEST(MultiRail, NamesResolve)
{
    EXPECT_EQ(collectiveTypeName(CollectiveType::AllReduce),
              "All-Reduce");
    EXPECT_EQ(collectiveTypeName(CollectiveType::AllToAll), "All-to-All");
}

/**
 * Property: more chunks of reduction (bigger prefix) never increases
 * traffic on outer dims, and scaling every BW scales time inversely.
 */
class MultiRailScaling : public ::testing::TestWithParam<double>
{};

TEST_P(MultiRailScaling, TimeScalesInverselyWithBw)
{
    double k = GetParam();
    std::vector<DimSpan> spans{{0, 4}, {1, 8}, {2, 4}, {3, 32}};
    BwConfig bw{40.0, 30.0, 20.0, 10.0};
    BwConfig scaled = bw;
    for (auto& b : scaled)
        b *= k;
    auto t1 = multiRailTime(CollectiveType::AllReduce, kM, spans, bw);
    auto t2 =
        multiRailTime(CollectiveType::AllReduce, kM, spans, scaled);
    EXPECT_NEAR(t2.time, t1.time / k, t1.time * 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Factors, MultiRailScaling,
                         ::testing::Values(0.5, 2.0, 4.0, 10.0));

} // namespace
} // namespace libra
