/**
 * @file
 * Cross-validation of the analytical CollectiveTiming model
 * (multiRailTime) against the data-carrying CollectiveSim, across a
 * topology zoo x {Reduce-Scatter, All-Gather, All-Reduce} x in-network
 * on/off — plus a randomized property suite that fuzzes seeded
 * (topology x collective x size x parallelization x bandwidth) points
 * through the registered "analytical" and "chunk-sim" timing backends
 * and pins their agreement to the documented tolerance
 * (chunkSimRelTolerance: the pipeline fill/drain ramp, at most
 * sum_i t_i / numChunks on top of the bottleneck time).
 *
 * Agreement contract (the "latency-model tolerance" documented in
 * docs/STUDIES.md): CollectiveSim charges each per-dimension stage
 *
 *     t_stage = traffic_d / B_d + steps_d * link_latency
 *
 * while the analytical model is bandwidth-only (t_d = traffic_d / B_d).
 * The two therefore agree per stage to within exactly
 * steps_d * link_latency — bit-exactly at zero latency (tolerance
 * kRelTol covers floating-point summation order only), and within the
 * per-stage latency correction otherwise.
 *
 * In-network offload changes only the All-Reduce traffic (the sim has
 * no switch-reduction mode), so the ON axis is validated analytically:
 * RS/AG timings are unchanged by the flag, the offloaded AR traffic
 * matches its closed form m / q_{i-1} per dimension, it never exceeds
 * the (sim-validated) multi-rail AR traffic, and the two coincide
 * exactly on size-2 dimensions where 2m(g-1)/q_i == m*g/q_i.
 */

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "collective/mapping.hh"
#include "collective/multi_rail.hh"
#include "common/random.hh"
#include "core/timing_backend.hh"
#include "sim/collective_sim.hh"
#include "topology/zoo.hh"

namespace libra {
namespace {

constexpr double kRelTol = 1e-12;

/** Networks the sim can execute in test time (full-dimension groups). */
std::vector<topo::NamedNetwork>
crossvalZoo()
{
    std::vector<topo::NamedNetwork> zoo{
        {"3D-Torus", topo::threeDTorus()},
        {"3D-512", topo::threeD512()},
        {"3D-mixed", Network::parse("SW(4)_FC(4)_RI(4)")},
        {"2D-mixed", Network::parse("FC(8)_RI(8)")},
    };
    for (auto& named : topo::realSystems())
        zoo.push_back(std::move(named));
    return zoo;
}

/** Deterministic non-uniform per-dimension bandwidth. */
BwConfig
bwFor(const Network& net)
{
    BwConfig bw;
    for (std::size_t d = 0; d < net.numDims(); ++d)
        bw.push_back(120.0 / static_cast<double>(d + 1) + 7.5);
    return bw;
}

void
initSim(CollectiveSim& sim, const Network& /*net*/, std::size_t elems)
{
    sim.init(elems, [](long npu, std::size_t i) {
        return static_cast<double>((npu * 31 + static_cast<long>(i) * 7) %
                                   97) /
               9.7;
    });
}

void
expectNear(Seconds actual, Seconds expected, const std::string& what)
{
    EXPECT_NEAR(actual, expected,
                std::abs(expected) * kRelTol + 1e-18)
        << what;
}

TEST(SimCrossval, ReduceScatterStageTimesMatchAnalyticalModel)
{
    for (const auto& [label, net] : crossvalZoo()) {
        SCOPED_TRACE(label);
        const std::size_t elems =
            static_cast<std::size_t>(net.npus()) * 8;
        const Bytes m = static_cast<double>(elems) * kFp32Bytes;
        auto spans = mapGroupToDims(net, 1, net.npus());
        BwConfig bw = bwFor(net);

        CollectiveSim sim(net, bw);
        initSim(sim, net, elems);
        sim.runReduceScatter();
        ASSERT_TRUE(sim.verifyReduceScatter());

        CollectiveTiming analytic = multiRailTime(
            CollectiveType::ReduceScatter, m, spans, bw);
        ASSERT_EQ(sim.stages().size(), net.numDims());
        for (std::size_t i = 0; i < spans.size(); ++i) {
            const StageResult& stage = sim.stages()[i];
            EXPECT_EQ(stage.dim, spans[i].dim);
            expectNear(stage.bytesPerNpu, analytic.trafficPerDim[i],
                       label + " RS traffic dim " +
                           std::to_string(stage.dim));
            expectNear(stage.time, analytic.timePerDim[i],
                       label + " RS time dim " +
                           std::to_string(stage.dim));
        }
    }
}

TEST(SimCrossval, AllGatherStageTimesMatchAnalyticalModel)
{
    for (const auto& [label, net] : crossvalZoo()) {
        SCOPED_TRACE(label);
        const std::size_t elems =
            static_cast<std::size_t>(net.npus()) * 8;
        const Bytes m = static_cast<double>(elems) * kFp32Bytes;
        auto spans = mapGroupToDims(net, 1, net.npus());
        BwConfig bw = bwFor(net);

        // All-Gather redistributes the Reduce-Scatter partition, so it
        // runs on post-RS state; its stages are the allGather records.
        CollectiveSim sim(net, bw);
        initSim(sim, net, elems);
        sim.runReduceScatter();
        sim.runAllGather();
        ASSERT_TRUE(sim.verifyAllReduce());

        CollectiveTiming analytic =
            multiRailTime(CollectiveType::AllGather, m, spans, bw);
        std::size_t checked = 0;
        for (const StageResult& stage : sim.stages()) {
            if (!stage.allGather)
                continue;
            // AG visits dims descending; span index == dim index for
            // these whole-network groups.
            std::size_t i = stage.dim;
            expectNear(stage.bytesPerNpu, analytic.trafficPerDim[i],
                       label + " AG traffic dim " +
                           std::to_string(stage.dim));
            expectNear(stage.time, analytic.timePerDim[i],
                       label + " AG time dim " +
                           std::to_string(stage.dim));
            ++checked;
        }
        EXPECT_EQ(checked, net.numDims());
    }
}

TEST(SimCrossval, AllReducePerDimBusyMatchesAnalyticalModel)
{
    for (const auto& [label, net] : crossvalZoo()) {
        SCOPED_TRACE(label);
        const std::size_t elems =
            static_cast<std::size_t>(net.npus()) * 8;
        const Bytes m = static_cast<double>(elems) * kFp32Bytes;
        auto spans = mapGroupToDims(net, 1, net.npus());
        BwConfig bw = bwFor(net);

        CollectiveSim sim(net, bw);
        initSim(sim, net, elems);
        Seconds total = sim.runAllReduce();
        ASSERT_TRUE(sim.verifyAllReduce());

        CollectiveTiming analytic =
            multiRailTime(CollectiveType::AllReduce, m, spans, bw);

        // Per-dimension: RS + AG stage time == the analytical AR
        // bottleneck traffic for that dimension.
        std::vector<Seconds> dimTime(net.numDims(), 0.0);
        for (const StageResult& stage : sim.stages())
            dimTime[stage.dim] += stage.time;
        Seconds simSum = 0.0;
        for (std::size_t i = 0; i < spans.size(); ++i) {
            expectNear(dimTime[i], analytic.timePerDim[i],
                       label + " AR busy dim " + std::to_string(i));
            simSum += dimTime[i];
        }

        // The sequential sim's makespan is the stage-time sum; the
        // pipelined analytical makespan is the bottleneck dim. The
        // analytical time can only be shorter.
        expectNear(total, simSum, label + " AR makespan");
        EXPECT_LE(analytic.time, total * (1.0 + kRelTol)) << label;
        EXPECT_GE(analytic.time,
                  *std::max_element(analytic.timePerDim.begin(),
                                    analytic.timePerDim.end()) *
                      (1.0 - kRelTol))
            << label;
    }
}

TEST(SimCrossval, LatencyTermIsExactlyStepsTimesLinkLatency)
{
    const Seconds latency = 2.5e-6;
    for (const auto& [label, net] : crossvalZoo()) {
        SCOPED_TRACE(label);
        const std::size_t elems =
            static_cast<std::size_t>(net.npus()) * 8;
        const Bytes m = static_cast<double>(elems) * kFp32Bytes;
        auto spans = mapGroupToDims(net, 1, net.npus());
        BwConfig bw = bwFor(net);

        CollectiveSim sim(net, bw, latency);
        initSim(sim, net, elems);
        sim.runAllReduce();

        CollectiveTiming analytic =
            multiRailTime(CollectiveType::AllReduce, m, spans, bw);
        std::vector<Seconds> dimTime(net.numDims(), 0.0);
        std::vector<int> dimSteps(net.numDims(), 0);
        for (const StageResult& stage : sim.stages()) {
            dimTime[stage.dim] += stage.time;
            dimSteps[stage.dim] += stage.steps;
        }
        // Documented tolerance: the analytical (bandwidth-only) model
        // differs from the sim by exactly steps * link_latency.
        for (std::size_t i = 0; i < spans.size(); ++i) {
            expectNear(dimTime[i],
                       analytic.timePerDim[i] +
                           dimSteps[i] * latency,
                       label + " latency-corrected dim " +
                           std::to_string(i));
        }
    }
}

TEST(SimCrossval, InNetworkOffloadInvariants)
{
    for (const auto& [label, net] : crossvalZoo()) {
        SCOPED_TRACE(label);
        const std::size_t elems =
            static_cast<std::size_t>(net.npus()) * 8;
        const Bytes m = static_cast<double>(elems) * kFp32Bytes;
        auto spans = mapGroupToDims(net, 1, net.npus());
        BwConfig bw = bwFor(net);

        // The flag only affects All-Reduce: RS/AG timings (validated
        // against the sim above) are identical with it on.
        for (CollectiveType type : {CollectiveType::ReduceScatter,
                                    CollectiveType::AllGather}) {
            CollectiveTiming off =
                multiRailTime(type, m, spans, bw, false);
            CollectiveTiming on =
                multiRailTime(type, m, spans, bw, true);
            EXPECT_EQ(off.trafficPerDim, on.trafficPerDim);
            EXPECT_EQ(off.timePerDim, on.timePerDim);
        }

        CollectiveTiming ring = multiRailTime(
            CollectiveType::AllReduce, m, spans, bw, false);
        CollectiveTiming offload = multiRailTime(
            CollectiveType::AllReduce, m, spans, bw, true);

        double prefix = 1.0;
        for (std::size_t i = 0; i < spans.size(); ++i) {
            double g = static_cast<double>(spans[i].groupSize);
            // Closed form: dim i forwards the locally reduced payload
            // m / q_{i-1} once into the switch fabric.
            expectNear(offload.trafficPerDim[i], m / prefix,
                       label + " in-network traffic dim " +
                           std::to_string(i));
            // Offload can never move more bytes than multi-rail AR
            // (2(g-1) >= g for g >= 2) and coincides exactly at g=2.
            EXPECT_LE(offload.trafficPerDim[i],
                      ring.trafficPerDim[i] * (1.0 + kRelTol))
                << label;
            if (spans[i].groupSize == 2) {
                expectNear(offload.trafficPerDim[i],
                           ring.trafficPerDim[i],
                           label + " g=2 equivalence dim " +
                               std::to_string(i));
            }
            prefix *= g;
        }
    }
}

// --- Randomized estimator <-> sim backend property suite ---------------

/** One fuzzed cross-validation point, fully derived from its seed. */
struct FuzzPoint
{
    std::uint64_t seed = 0;
    Network net = Network::parse("RI(4)");
    CollectiveType type = CollectiveType::AllReduce;
    Bytes size = 0.0;
    long stride = 1;    ///< Communicator inner stride (TP-below size).
    long group = 1;     ///< Communicator group size.
    BwConfig bw;

    std::string
    describe() const
    {
        return "seed=" + std::to_string(seed) + " net=" + net.name() +
               " type=" + collectiveTypeName(type) +
               " size=" + std::to_string(size) +
               " stride=" + std::to_string(stride) +
               " group=" + std::to_string(group);
    }
};

/**
 * Draw a random point. The (stride, group) pair is a communicator
 * group of a random hybrid parallelization: stride = the product of
 * the dimensions occupied by inner parallelism, group spanning the
 * next dimensions fully plus (sometimes) one partial dimension — the
 * same layouts mapGroupToDims() produces for real TP/PP/DP scopes.
 */
FuzzPoint
drawPoint(std::uint64_t seed)
{
    static const char* kShapes[] = {
        "RI(4)_FC(4)_SW(4)", "FC(8)_RI(8)",      "RI(8)_SW(8)",
        "SW(4)_RI(4)_FC(2)_SW(2)", "FC(4)_SW(4)_RI(4)",
    };
    static const CollectiveType kTypes[] = {
        CollectiveType::AllReduce,     CollectiveType::ReduceScatter,
        CollectiveType::AllGather,     CollectiveType::AllToAll,
        CollectiveType::PointToPoint,
    };

    Rng rng(seed);
    FuzzPoint p;
    p.seed = seed;
    p.net = Network::parse(kShapes[rng.uniformInt(
        0, static_cast<int>(std::size(kShapes)) - 1)]);
    p.type = kTypes[rng.uniformInt(
        0, static_cast<int>(std::size(kTypes)) - 1)];
    p.size = rng.uniform(1.0 * kMB, 2.0 * kGB);

    std::vector<int> sizes = p.net.sizes();
    int dims = static_cast<int>(sizes.size());
    // Inner parallelism consumes dims [0, a); the group spans dims
    // [a, a+b) fully, optionally times a divisor of dim a+b.
    int a = rng.uniformInt(0, dims - 1);
    int b = rng.uniformInt(1, dims - a);
    p.stride = p.net.prefixProduct(static_cast<std::size_t>(a));
    p.group = 1;
    for (int d = a; d < a + b; ++d)
        p.group *= sizes[d];
    if (a + b < dims && rng.uniformInt(0, 1) == 1) {
        int next = sizes[a + b];
        std::vector<int> divisors;
        for (int d = 2; d < next; ++d)
            if (next % d == 0)
                divisors.push_back(d);
        if (!divisors.empty()) {
            p.group *= divisors[rng.uniformInt(
                0, static_cast<int>(divisors.size()) - 1)];
        }
    }
    for (std::size_t d = 0; d < p.net.numDims(); ++d)
        p.bw.push_back(rng.uniform(5.0, 200.0));
    return p;
}

TEST(SimCrossval, RandomizedBackendAgreementWithinDocumentedTolerance)
{
    const TimingBackend* analytical =
        resolveTimingBackend(kAnalyticalTimingBackendName);
    const TimingBackend* sim =
        resolveTimingBackend(kChunkSimTimingBackendName);

    // Fixed base seed: every point is reproducible from the seed the
    // failure message prints (drawPoint(seed) rebuilds it exactly).
    const std::uint64_t kBaseSeed = 0xC805'511Bull;
    const int kPoints = 96;
    int checked = 0;
    for (int i = 0; i < kPoints; ++i) {
        FuzzPoint p = drawPoint(kBaseSeed + static_cast<std::uint64_t>(i));
        auto spans = mapGroupToDims(p.net, p.stride, p.group);
        if (spans.empty())
            continue; // Degenerate single-NPU group.
        ++checked;

        CollectiveTiming a =
            analytical->timing(p.type, p.size, spans, p.bw, false);
        CollectiveTiming s =
            sim->timing(p.type, p.size, spans, p.bw, false);

        // Traffic is structural — both backends must agree exactly.
        ASSERT_EQ(s.trafficPerDim, a.trafficPerDim) << p.describe();

        // Per-dimension busy time: the sim moves the same bytes over
        // the same bandwidth, so only FP summation and the simulator's
        // picosecond tick grid separate the two.
        ASSERT_EQ(s.timePerDim.size(), a.timePerDim.size())
            << p.describe();
        for (std::size_t d = 0; d < a.timePerDim.size(); ++d) {
            EXPECT_NEAR(s.timePerDim[d], a.timePerDim[d],
                        a.timePerDim[d] * 1e-9 + 1e-15)
                << p.describe() << " span " << d;
        }

        // Completion time: the pipelined sim can never beat the
        // bottleneck bound (up to the simulator's picosecond event
        // grid) and exceeds it by at most the documented fill/drain
        // ramp.
        double tol = chunkSimRelTolerance(a);
        EXPECT_GE(s.time, a.time * (1.0 - 1e-6)) << p.describe();
        EXPECT_LE(s.time, a.time * (1.0 + tol))
            << p.describe() << " (rel err "
            << (s.time - a.time) / a.time << " vs documented tol "
            << tol << ")";
    }
    // The generator must not silently degenerate.
    EXPECT_GE(checked, kPoints / 2);
}

TEST(SimCrossval, RandomizedPointsAreSeedReproducible)
{
    // The reproduction contract the failure message relies on: the
    // same seed rebuilds the same point, and backend timings are pure
    // functions of it.
    const std::uint64_t seed = 0xC805'511Bull + 17;
    FuzzPoint p1 = drawPoint(seed);
    FuzzPoint p2 = drawPoint(seed);
    EXPECT_EQ(p1.describe(), p2.describe());
    EXPECT_EQ(p1.bw, p2.bw);

    auto spans = mapGroupToDims(p1.net, p1.stride, p1.group);
    if (!spans.empty()) {
        const TimingBackend* sim =
            resolveTimingBackend(kChunkSimTimingBackendName);
        CollectiveTiming s1 =
            sim->timing(p1.type, p1.size, spans, p1.bw, false);
        CollectiveTiming s2 =
            sim->timing(p2.type, p2.size, spans, p2.bw, false);
        EXPECT_EQ(s1.time, s2.time);
        EXPECT_EQ(s1.timePerDim, s2.timePerDim);
    }
}

} // namespace
} // namespace libra
