/**
 * @file
 * Cross-validation of the analytical CollectiveTiming model
 * (multiRailTime) against the data-carrying CollectiveSim, across a
 * topology zoo x {Reduce-Scatter, All-Gather, All-Reduce} x in-network
 * on/off.
 *
 * Agreement contract (the "latency-model tolerance" documented in
 * docs/STUDIES.md): CollectiveSim charges each per-dimension stage
 *
 *     t_stage = traffic_d / B_d + steps_d * link_latency
 *
 * while the analytical model is bandwidth-only (t_d = traffic_d / B_d).
 * The two therefore agree per stage to within exactly
 * steps_d * link_latency — bit-exactly at zero latency (tolerance
 * kRelTol covers floating-point summation order only), and within the
 * per-stage latency correction otherwise.
 *
 * In-network offload changes only the All-Reduce traffic (the sim has
 * no switch-reduction mode), so the ON axis is validated analytically:
 * RS/AG timings are unchanged by the flag, the offloaded AR traffic
 * matches its closed form m / q_{i-1} per dimension, it never exceeds
 * the (sim-validated) multi-rail AR traffic, and the two coincide
 * exactly on size-2 dimensions where 2m(g-1)/q_i == m*g/q_i.
 */

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "collective/mapping.hh"
#include "collective/multi_rail.hh"
#include "sim/collective_sim.hh"
#include "topology/zoo.hh"

namespace libra {
namespace {

constexpr double kRelTol = 1e-12;

/** Networks the sim can execute in test time (full-dimension groups). */
std::vector<topo::NamedNetwork>
crossvalZoo()
{
    std::vector<topo::NamedNetwork> zoo{
        {"3D-Torus", topo::threeDTorus()},
        {"3D-512", topo::threeD512()},
        {"3D-mixed", Network::parse("SW(4)_FC(4)_RI(4)")},
        {"2D-mixed", Network::parse("FC(8)_RI(8)")},
    };
    for (auto& named : topo::realSystems())
        zoo.push_back(std::move(named));
    return zoo;
}

/** Deterministic non-uniform per-dimension bandwidth. */
BwConfig
bwFor(const Network& net)
{
    BwConfig bw;
    for (std::size_t d = 0; d < net.numDims(); ++d)
        bw.push_back(120.0 / static_cast<double>(d + 1) + 7.5);
    return bw;
}

void
initSim(CollectiveSim& sim, const Network& /*net*/, std::size_t elems)
{
    sim.init(elems, [](long npu, std::size_t i) {
        return static_cast<double>((npu * 31 + static_cast<long>(i) * 7) %
                                   97) /
               9.7;
    });
}

void
expectNear(Seconds actual, Seconds expected, const std::string& what)
{
    EXPECT_NEAR(actual, expected,
                std::abs(expected) * kRelTol + 1e-18)
        << what;
}

TEST(SimCrossval, ReduceScatterStageTimesMatchAnalyticalModel)
{
    for (const auto& [label, net] : crossvalZoo()) {
        SCOPED_TRACE(label);
        const std::size_t elems =
            static_cast<std::size_t>(net.npus()) * 8;
        const Bytes m = static_cast<double>(elems) * kFp32Bytes;
        auto spans = mapGroupToDims(net, 1, net.npus());
        BwConfig bw = bwFor(net);

        CollectiveSim sim(net, bw);
        initSim(sim, net, elems);
        sim.runReduceScatter();
        ASSERT_TRUE(sim.verifyReduceScatter());

        CollectiveTiming analytic = multiRailTime(
            CollectiveType::ReduceScatter, m, spans, bw);
        ASSERT_EQ(sim.stages().size(), net.numDims());
        for (std::size_t i = 0; i < spans.size(); ++i) {
            const StageResult& stage = sim.stages()[i];
            EXPECT_EQ(stage.dim, spans[i].dim);
            expectNear(stage.bytesPerNpu, analytic.trafficPerDim[i],
                       label + " RS traffic dim " +
                           std::to_string(stage.dim));
            expectNear(stage.time, analytic.timePerDim[i],
                       label + " RS time dim " +
                           std::to_string(stage.dim));
        }
    }
}

TEST(SimCrossval, AllGatherStageTimesMatchAnalyticalModel)
{
    for (const auto& [label, net] : crossvalZoo()) {
        SCOPED_TRACE(label);
        const std::size_t elems =
            static_cast<std::size_t>(net.npus()) * 8;
        const Bytes m = static_cast<double>(elems) * kFp32Bytes;
        auto spans = mapGroupToDims(net, 1, net.npus());
        BwConfig bw = bwFor(net);

        // All-Gather redistributes the Reduce-Scatter partition, so it
        // runs on post-RS state; its stages are the allGather records.
        CollectiveSim sim(net, bw);
        initSim(sim, net, elems);
        sim.runReduceScatter();
        sim.runAllGather();
        ASSERT_TRUE(sim.verifyAllReduce());

        CollectiveTiming analytic =
            multiRailTime(CollectiveType::AllGather, m, spans, bw);
        std::size_t checked = 0;
        for (const StageResult& stage : sim.stages()) {
            if (!stage.allGather)
                continue;
            // AG visits dims descending; span index == dim index for
            // these whole-network groups.
            std::size_t i = stage.dim;
            expectNear(stage.bytesPerNpu, analytic.trafficPerDim[i],
                       label + " AG traffic dim " +
                           std::to_string(stage.dim));
            expectNear(stage.time, analytic.timePerDim[i],
                       label + " AG time dim " +
                           std::to_string(stage.dim));
            ++checked;
        }
        EXPECT_EQ(checked, net.numDims());
    }
}

TEST(SimCrossval, AllReducePerDimBusyMatchesAnalyticalModel)
{
    for (const auto& [label, net] : crossvalZoo()) {
        SCOPED_TRACE(label);
        const std::size_t elems =
            static_cast<std::size_t>(net.npus()) * 8;
        const Bytes m = static_cast<double>(elems) * kFp32Bytes;
        auto spans = mapGroupToDims(net, 1, net.npus());
        BwConfig bw = bwFor(net);

        CollectiveSim sim(net, bw);
        initSim(sim, net, elems);
        Seconds total = sim.runAllReduce();
        ASSERT_TRUE(sim.verifyAllReduce());

        CollectiveTiming analytic =
            multiRailTime(CollectiveType::AllReduce, m, spans, bw);

        // Per-dimension: RS + AG stage time == the analytical AR
        // bottleneck traffic for that dimension.
        std::vector<Seconds> dimTime(net.numDims(), 0.0);
        for (const StageResult& stage : sim.stages())
            dimTime[stage.dim] += stage.time;
        Seconds simSum = 0.0;
        for (std::size_t i = 0; i < spans.size(); ++i) {
            expectNear(dimTime[i], analytic.timePerDim[i],
                       label + " AR busy dim " + std::to_string(i));
            simSum += dimTime[i];
        }

        // The sequential sim's makespan is the stage-time sum; the
        // pipelined analytical makespan is the bottleneck dim. The
        // analytical time can only be shorter.
        expectNear(total, simSum, label + " AR makespan");
        EXPECT_LE(analytic.time, total * (1.0 + kRelTol)) << label;
        EXPECT_GE(analytic.time,
                  *std::max_element(analytic.timePerDim.begin(),
                                    analytic.timePerDim.end()) *
                      (1.0 - kRelTol))
            << label;
    }
}

TEST(SimCrossval, LatencyTermIsExactlyStepsTimesLinkLatency)
{
    const Seconds latency = 2.5e-6;
    for (const auto& [label, net] : crossvalZoo()) {
        SCOPED_TRACE(label);
        const std::size_t elems =
            static_cast<std::size_t>(net.npus()) * 8;
        const Bytes m = static_cast<double>(elems) * kFp32Bytes;
        auto spans = mapGroupToDims(net, 1, net.npus());
        BwConfig bw = bwFor(net);

        CollectiveSim sim(net, bw, latency);
        initSim(sim, net, elems);
        sim.runAllReduce();

        CollectiveTiming analytic =
            multiRailTime(CollectiveType::AllReduce, m, spans, bw);
        std::vector<Seconds> dimTime(net.numDims(), 0.0);
        std::vector<int> dimSteps(net.numDims(), 0);
        for (const StageResult& stage : sim.stages()) {
            dimTime[stage.dim] += stage.time;
            dimSteps[stage.dim] += stage.steps;
        }
        // Documented tolerance: the analytical (bandwidth-only) model
        // differs from the sim by exactly steps * link_latency.
        for (std::size_t i = 0; i < spans.size(); ++i) {
            expectNear(dimTime[i],
                       analytic.timePerDim[i] +
                           dimSteps[i] * latency,
                       label + " latency-corrected dim " +
                           std::to_string(i));
        }
    }
}

TEST(SimCrossval, InNetworkOffloadInvariants)
{
    for (const auto& [label, net] : crossvalZoo()) {
        SCOPED_TRACE(label);
        const std::size_t elems =
            static_cast<std::size_t>(net.npus()) * 8;
        const Bytes m = static_cast<double>(elems) * kFp32Bytes;
        auto spans = mapGroupToDims(net, 1, net.npus());
        BwConfig bw = bwFor(net);

        // The flag only affects All-Reduce: RS/AG timings (validated
        // against the sim above) are identical with it on.
        for (CollectiveType type : {CollectiveType::ReduceScatter,
                                    CollectiveType::AllGather}) {
            CollectiveTiming off =
                multiRailTime(type, m, spans, bw, false);
            CollectiveTiming on =
                multiRailTime(type, m, spans, bw, true);
            EXPECT_EQ(off.trafficPerDim, on.trafficPerDim);
            EXPECT_EQ(off.timePerDim, on.timePerDim);
        }

        CollectiveTiming ring = multiRailTime(
            CollectiveType::AllReduce, m, spans, bw, false);
        CollectiveTiming offload = multiRailTime(
            CollectiveType::AllReduce, m, spans, bw, true);

        double prefix = 1.0;
        for (std::size_t i = 0; i < spans.size(); ++i) {
            double g = static_cast<double>(spans[i].groupSize);
            // Closed form: dim i forwards the locally reduced payload
            // m / q_{i-1} once into the switch fabric.
            expectNear(offload.trafficPerDim[i], m / prefix,
                       label + " in-network traffic dim " +
                           std::to_string(i));
            // Offload can never move more bytes than multi-rail AR
            // (2(g-1) >= g for g >= 2) and coincides exactly at g=2.
            EXPECT_LE(offload.trafficPerDim[i],
                      ring.trafficPerDim[i] * (1.0 + kRelTol))
                << label;
            if (spans[i].groupSize == 2) {
                expectNear(offload.trafficPerDim[i],
                           ring.trafficPerDim[i],
                           label + " g=2 equivalence dim " +
                               std::to_string(i));
            }
            prefix *= g;
        }
    }
}

} // namespace
} // namespace libra
