/**
 * @file
 * Property tests: the compiled fast-path evaluator must be bit-exact
 * against the direct estimator across workloads, loops, networks, and
 * bandwidth configurations.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "common/random.hh"
#include "core/estimator.hh"
#include "topology/zoo.hh"
#include "workload/zoo.hh"

namespace libra {
namespace {

struct CompiledCase
{
    const char* network;
    const char* workload;
    TrainingLoop loop;
};

class CompiledEquivalence
    : public ::testing::TestWithParam<CompiledCase>
{
  protected:
    static Workload
    makeWorkload(const std::string& name, long npus)
    {
        if (name == "turing")
            return wl::turingNlg(npus);
        if (name == "gpt3")
            return wl::gpt3(npus);
        if (name == "msft")
            return wl::msft1T(npus);
        if (name == "dlrm")
            return wl::dlrm(npus);
        if (name == "resnet")
            return wl::resnet50(npus);
        if (name == "gpt3-pp")
            return wl::gpt3WithStrategy(16, 8, npus / 128);
        panic("unknown workload tag");
    }
};

TEST_P(CompiledEquivalence, MatchesDirectEstimator)
{
    const auto& param = GetParam();
    Network net = Network::parse(param.network);
    EstimatorOptions opt;
    opt.loop = param.loop;
    TrainingEstimator est(net, opt);
    Workload w = makeWorkload(param.workload, net.npus());
    CompiledWorkload cw = est.compile(w);

    Rng rng(99);
    for (int trial = 0; trial < 12; ++trial) {
        BwConfig bw = rng.simplexPoint(net.numDims(), 800.0);
        for (auto& b : bw)
            b = std::max(b, 1.0);
        ASSERT_NEAR(cw.estimate(bw), est.estimate(w, bw),
                    1e-12 * est.estimate(w, bw))
            << param.network << "/" << param.workload;
        // The SoA fast path and the legacy nested layout must agree
        // (same math, different memory walk).
        ASSERT_NEAR(cw.estimate(bw), cw.estimateNested(bw),
                    1e-12 * cw.estimateNested(bw))
            << param.network << "/" << param.workload;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, CompiledEquivalence,
    ::testing::Values(
        CompiledCase{"RI(4)_FC(8)_RI(4)_SW(32)", "msft",
                     TrainingLoop::NoOverlap},
        CompiledCase{"RI(4)_FC(8)_RI(4)_SW(32)", "msft",
                     TrainingLoop::TpDpOverlap},
        CompiledCase{"RI(4)_FC(8)_RI(4)_SW(32)", "gpt3",
                     TrainingLoop::NoOverlap},
        CompiledCase{"RI(4)_FC(8)_RI(4)_SW(32)", "gpt3-pp",
                     TrainingLoop::TpDpOverlap},
        CompiledCase{"RI(16)_FC(8)_SW(32)", "turing",
                     TrainingLoop::NoOverlap},
        CompiledCase{"SW(16)_SW(8)_SW(4)", "dlrm",
                     TrainingLoop::TpDpOverlap},
        CompiledCase{"SW(16)_SW(8)_SW(4)", "resnet",
                     TrainingLoop::NoOverlap}));

TEST(Compiled, InNetworkFlagRespected)
{
    Network net = topo::threeD512();
    EstimatorOptions opt;
    opt.inNetworkCollectives = true;
    TrainingEstimator est(net, opt);
    Workload w = wl::resnet50(net.npus());
    CompiledWorkload cw = est.compile(w);
    BwConfig bw = net.equalBw(300.0);
    EXPECT_NEAR(cw.estimate(bw), est.estimate(w, bw), 1e-12);
}

TEST(Compiled, CustomCommTimeFnRejected)
{
    Network net = Network::parse("RI(4)");
    EstimatorOptions opt;
    opt.commTimeFn = [](CollectiveType, Bytes,
                        const std::vector<DimSpan>& spans,
                        const BwConfig&, bool) {
        CollectiveTiming t;
        t.timePerDim.assign(spans.size(), 0.0);
        t.trafficPerDim.assign(spans.size(), 0.0);
        return t;
    };
    TrainingEstimator est(net, opt);
    Workload w = wl::resnet50(4);
    EXPECT_THROW(est.compile(w), FatalError);
}

TEST(Compiled, MismatchedWorkloadRejected)
{
    Network net = topo::fourD4K();
    TrainingEstimator est(net);
    EXPECT_THROW(est.compile(wl::gpt3(1024)), FatalError);
}

} // namespace
} // namespace libra
