/**
 * @file
 * Tests for the active-set QP solver and the projection utilities.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/logging.hh"
#include "common/random.hh"
#include "solver/feasible.hh"
#include "solver/qp.hh"

namespace libra {
namespace {

TEST(FindFeasible, HitsSimplex)
{
    ConstraintSet cs(3);
    cs.addTotalBw(30.0);
    cs.addLowerBounds(1.0);
    Vec x = findFeasiblePoint(cs, {100.0, -5.0, 2.0});
    EXPECT_LE(cs.maxViolation(x), 1e-8);
}

TEST(FindFeasible, EqualityChain)
{
    ConstraintSet cs(4);
    cs.addTotalBw(100.0);
    cs.addParsed("B2 + B3 = B4");
    cs.addLowerBounds(0.5);
    Vec x = findFeasiblePoint(cs, {25, 25, 25, 25});
    EXPECT_LE(cs.maxViolation(x), 1e-8);
}

TEST(QpSolver, UnconstrainedMinimum)
{
    // min 1/2 x'Ix - [1,2].x -> x = (1, 2).
    QpSolver qp(Matrix::identity(2), {-1.0, -2.0}, Matrix(), Vec(),
                Matrix(), Vec());
    QpResult r = qp.solve({0.0, 0.0});
    EXPECT_TRUE(r.converged);
    EXPECT_NEAR(r.x[0], 1.0, 1e-8);
    EXPECT_NEAR(r.x[1], 2.0, 1e-8);
}

TEST(QpSolver, EqualityConstrained)
{
    // min 1/2||x||^2 s.t. x0 + x1 = 2 -> x = (1, 1).
    Matrix a;
    a.appendRow({1.0, 1.0});
    QpSolver qp(Matrix::identity(2), {0.0, 0.0}, a, {2.0}, Matrix(),
                Vec());
    QpResult r = qp.solve({2.0, 0.0});
    EXPECT_TRUE(r.converged);
    EXPECT_NEAR(r.x[0], 1.0, 1e-8);
    EXPECT_NEAR(r.x[1], 1.0, 1e-8);
}

TEST(QpSolver, ActiveInequality)
{
    // min 1/2||x - (3,0)||^2 s.t. x0 <= 1 -> x = (1, 0).
    Matrix g;
    g.appendRow({1.0, 0.0});
    QpSolver qp(Matrix::identity(2), {-3.0, 0.0}, Matrix(), Vec(), g,
                {1.0});
    QpResult r = qp.solve({0.0, 0.0});
    EXPECT_TRUE(r.converged);
    EXPECT_NEAR(r.x[0], 1.0, 1e-7);
    EXPECT_NEAR(r.x[1], 0.0, 1e-7);
}

TEST(QpSolver, InactiveInequalityIgnored)
{
    // Same but the cap is not binding -> unconstrained optimum.
    Matrix g;
    g.appendRow({1.0, 0.0});
    QpSolver qp(Matrix::identity(2), {-3.0, 0.0}, Matrix(), Vec(), g,
                {10.0});
    QpResult r = qp.solve({0.0, 0.0});
    EXPECT_TRUE(r.converged);
    EXPECT_NEAR(r.x[0], 3.0, 1e-7);
}

TEST(Projection, InteriorPointUnchanged)
{
    ConstraintSet cs(2);
    cs.addParsed("B1 + B2 <= 10");
    cs.addLowerBounds(0.0);
    Vec p = projectOntoConstraints(cs, {2.0, 3.0});
    EXPECT_NEAR(p[0], 2.0, 1e-7);
    EXPECT_NEAR(p[1], 3.0, 1e-7);
}

TEST(Projection, OntoSimplexKnownAnswer)
{
    // Project (2, 0) onto {x >= 0, x0+x1 = 1}: answer (1, 0)... actually
    // the Euclidean projection of (2,0) onto the segment is (1, 0)? The
    // unconstrained hyperplane projection is (1.5, -0.5); clipping to
    // x1 >= 0 gives the vertex (1, 0).
    ConstraintSet cs(2);
    cs.addTotalBw(1.0);
    cs.addLowerBounds(0.0);
    Vec p = projectOntoConstraints(cs, {2.0, 0.0});
    EXPECT_NEAR(p[0], 1.0, 1e-6);
    EXPECT_NEAR(p[1], 0.0, 1e-6);
}

TEST(Projection, Idempotent)
{
    ConstraintSet cs(3);
    cs.addTotalBw(9.0);
    cs.addLowerBounds(0.5);
    Vec once = projectOntoConstraints(cs, {10.0, -4.0, 1.0});
    Vec twice = projectOntoConstraints(cs, once);
    for (int i = 0; i < 3; ++i)
        EXPECT_NEAR(once[static_cast<std::size_t>(i)],
                    twice[static_cast<std::size_t>(i)], 1e-6);
}

TEST(Projection, InfeasibleSetThrows)
{
    ConstraintSet cs(2);
    cs.addParsed("B1 + B2 = 10");
    cs.addParsed("B1 + B2 = 20");
    EXPECT_THROW(projectOntoConstraints(cs, {5.0, 5.0}), FatalError);
}

/**
 * Property: the projection is no farther from the query point than any
 * random feasible point (definition of Euclidean projection).
 */
class ProjectionProperty : public ::testing::TestWithParam<int>
{};

TEST_P(ProjectionProperty, ClosestAmongSamples)
{
    Rng rng(static_cast<std::uint64_t>(GetParam()) * 977 + 5);
    ConstraintSet cs(4);
    cs.addTotalBw(100.0);
    cs.addLowerBounds(0.1);
    cs.addUpperBound(0, 60.0);

    Vec q = rng.uniformVec(4, -50.0, 150.0);
    Vec p = projectOntoConstraints(cs, q);
    ASSERT_LE(cs.maxViolation(p), 1e-5);
    double dp = norm(sub(p, q));

    for (int s = 0; s < 50; ++s) {
        Vec cand = rng.simplexPoint(4, 100.0);
        if (!cs.feasible(cand, 1e-9))
            continue;
        EXPECT_LE(dp, norm(sub(cand, q)) + 1e-6);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ProjectionProperty,
                         ::testing::Range(0, 10));

} // namespace
} // namespace libra
