/**
 * @file
 * Bit-identity contracts of the fast objective-evaluation kernels.
 *
 * The SIMD-batched candidate-major path (estimateBatch) and the
 * incremental coordinate-move evaluator (WorkloadIncremental,
 * surfaced to solvers through the CompiledObjective facets) promise
 * results *bit-identical* to the scalar SoA estimate() — not merely
 * close. These tests enforce that promise with std::bit_cast
 * comparisons across dimension counts chosen to cover full SIMD
 * lanes, remainder lanes, and the scalar tail (1, 2, 8, 15, 16, 17),
 * both training loops, odd batch sizes, and a seeded coordinate-move
 * walk with periodic rebases.
 */

#include <bit>
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.hh"
#include "core/estimator.hh"
#include "core/incremental.hh"
#include "core/objective.hh"
#include "cost/cost_model.hh"
#include "solver/batch_eval.hh"
#include "topology/zoo.hh"
#include "workload/zoo.hh"

namespace libra {
namespace {

std::uint64_t
bits(double v)
{
    return std::bit_cast<std::uint64_t>(v);
}

/** Chain of @p dims size-2 dimensions, alternating unit topologies. */
Network
makeChainNetwork(std::size_t dims)
{
    std::string text;
    for (std::size_t i = 0; i < dims; ++i) {
        if (i)
            text += "_";
        text += (i % 2 == 0) ? "RI(2)" : "FC(2)";
    }
    return Network::parse(text);
}

/**
 * Two-layer workload touching every comm scope the estimator
 * distinguishes (Tp, Dp, All) with all the common collective types,
 * so the compiled ops include both single-span and multi-span rows.
 */
Workload
makeSyntheticWorkload(long npus)
{
    Workload w;
    w.name = "kernel-fuzz";
    w.strategy = {2, npus / 2};

    Layer a;
    a.name = "attn";
    a.fwdCompute = 1.1e-3;
    a.igCompute = 2.3e-3;
    a.wgCompute = 1.7e-3;
    a.fwdComm.push_back({CollectiveType::AllGather, CommScope::Tp, 3e8});
    a.igComm.push_back(
        {CollectiveType::ReduceScatter, CommScope::Tp, 2e8});
    a.wgComm.push_back({CollectiveType::AllReduce, CommScope::Dp, 5e8});

    Layer b;
    b.name = "embed";
    b.fwdCompute = 0.9e-3;
    b.igCompute = 1.2e-3;
    b.wgCompute = 0.6e-3;
    b.fwdComm.push_back({CollectiveType::AllToAll, CommScope::All, 1e8});
    b.wgComm.push_back({CollectiveType::AllReduce, CommScope::Dp, 4e8});

    w.layers = {a, b};
    return w;
}

/** Random feasible-ish bandwidth point (positive, bounded total). */
BwConfig
randomPoint(Rng& rng, std::size_t dims)
{
    BwConfig bw = rng.simplexPoint(dims, 600.0);
    for (auto& b : bw)
        b = std::max(b, 1.0);
    return bw;
}

struct KernelCase
{
    std::size_t dims;
    TrainingLoop loop;
};

std::string
kernelCaseName(const ::testing::TestParamInfo<KernelCase>& info)
{
    return std::to_string(info.param.dims) + "d_" +
           (info.param.loop == TrainingLoop::NoOverlap ? "NoOverlap"
                                                       : "TpDpOverlap");
}

class ObjectiveKernels : public ::testing::TestWithParam<KernelCase>
{
  protected:
    void
    SetUp() override
    {
        const KernelCase& param = GetParam();
        net_ = std::make_unique<Network>(makeChainNetwork(param.dims));
        EstimatorOptions opt;
        opt.loop = param.loop;
        est_ = std::make_unique<TrainingEstimator>(*net_, opt);
        w_ = makeSyntheticWorkload(net_->npus());
        cw_ = std::make_unique<CompiledWorkload>(est_->compile(w_));
    }

    std::unique_ptr<Network> net_;
    std::unique_ptr<TrainingEstimator> est_;
    Workload w_;
    std::unique_ptr<CompiledWorkload> cw_;
};

/**
 * estimateBatch must agree with per-candidate estimate() to the last
 * bit, at batch sizes exercising a lone candidate, sub-lane batches,
 * exactly-full SIMD blocks, and blocks plus a remainder tail.
 */
TEST_P(ObjectiveKernels, BatchMatchesScalarBitExact)
{
    Rng rng(0x5EED + GetParam().dims);
    for (std::size_t n : {1, 3, 8, 33}) {
        std::vector<BwConfig> pool;
        for (std::size_t i = 0; i < n; ++i)
            pool.push_back(randomPoint(rng, net_->numDims()));
        std::vector<Seconds> out(n, -1.0);
        cw_->estimateBatch(pool.data(), n, out.data());
        for (std::size_t i = 0; i < n; ++i) {
            EXPECT_EQ(bits(out[i]), bits(cw_->estimate(pool[i])))
                << "candidate " << i << " of " << n << " ("
                << activeSimdKernel() << " kernel)";
        }
    }
}

/**
 * A seeded coordinate-move walk: every probe must match a full
 * evaluation of the moved point bit-for-bit, the base estimate must
 * match the base point, and probing must never disturb the base.
 * Accepted moves periodically rebase to exercise the lazy cache
 * rebuild.
 */
TEST_P(ObjectiveKernels, IncrementalMatchesFullBitExact)
{
    const std::size_t dims = net_->numDims();
    Rng rng(0xA11CE + GetParam().dims);
    WorkloadIncremental inc(*cw_);

    BwConfig base = randomPoint(rng, dims);
    inc.setBase(base);
    ASSERT_EQ(bits(inc.baseEstimate()), bits(cw_->estimate(base)));

    for (int step = 0; step < 200; ++step) {
        const std::size_t d =
            static_cast<std::size_t>(rng.uniformInt(0, dims - 1));
        const double v = rng.uniform(1.0, 600.0);
        BwConfig moved = base;
        moved[d] = v;

        const Seconds probed = inc.probe(d, v);
        EXPECT_EQ(bits(probed), bits(cw_->estimate(moved)))
            << "step " << step << " dim " << d << " value " << v;
        // The probe must leave the base evaluation untouched.
        EXPECT_EQ(bits(inc.baseEstimate()), bits(cw_->estimate(base)))
            << "base disturbed at step " << step;

        if (step % 7 == 3) {
            base = moved;
            inc.setBase(base);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    LaneGrid, ObjectiveKernels,
    ::testing::Values(KernelCase{1, TrainingLoop::NoOverlap},
                      KernelCase{1, TrainingLoop::TpDpOverlap},
                      KernelCase{2, TrainingLoop::NoOverlap},
                      KernelCase{2, TrainingLoop::TpDpOverlap},
                      KernelCase{8, TrainingLoop::NoOverlap},
                      KernelCase{8, TrainingLoop::TpDpOverlap},
                      KernelCase{15, TrainingLoop::NoOverlap},
                      KernelCase{15, TrainingLoop::TpDpOverlap},
                      KernelCase{16, TrainingLoop::NoOverlap},
                      KernelCase{16, TrainingLoop::TpDpOverlap},
                      KernelCase{17, TrainingLoop::NoOverlap},
                      KernelCase{17, TrainingLoop::TpDpOverlap}),
    kernelCaseName);

/**
 * makeObjective over the analytical timing model must hand back a
 * callable whose BatchEvaluable facet is recoverable; a custom
 * timing model must fall back to a plain lambda (no facet).
 */
// GCC 12 falsely flags std::function::target()'s _Any_data as
// maybe-uninitialized when the empty-target branch is fully inlined
// (GCC PR105562); the library code is fine.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
TEST(ObjectiveFacade, RecoveredOnlyForAnalyticalTiming)
{
    Network net = Network::parse("RI(4)_FC(4)_SW(4)");
    CostModel cost = CostModel::defaultModel();
    std::vector<TargetWorkload> targets = {
        {wl::resnet50(net.npus()), 1.0}};

    TrainingEstimator analytical(net);
    ScalarObjective fast = makeObjective(OptimizationObjective::PerfOpt,
                                         analytical, cost, targets);
    EXPECT_NE(batchFacet(fast), nullptr);

    EstimatorOptions opt;
    opt.commTimeFn = [](CollectiveType, Bytes,
                        const std::vector<DimSpan>& spans,
                        const BwConfig&, bool) {
        CollectiveTiming t;
        t.timePerDim.assign(spans.size(), 1e-6);
        t.trafficPerDim.assign(spans.size(), 1.0);
        return t;
    };
    TrainingEstimator custom(net, opt);
    ScalarObjective plain = makeObjective(OptimizationObjective::PerfOpt,
                                          custom, cost, targets);
    EXPECT_EQ(batchFacet(plain), nullptr);

    ScalarObjective lambda = [](const Vec& x) { return x[0]; };
    EXPECT_EQ(batchFacet(lambda), nullptr);
}
#pragma GCC diagnostic pop

class ObjectiveFacets
    : public ::testing::TestWithParam<OptimizationObjective>
{};

/**
 * The facets must reproduce the plain call operator exactly: the
 * batched path over a mixed-weight two-workload ensemble and the
 * incremental path over single-coordinate moves, under both
 * objectives (PerfPerCostOpt adds the cost multiply after the sum).
 */
TEST_P(ObjectiveFacets, BatchAndIncrementalMatchCallOperator)
{
    Network net = Network::parse("RI(4)_FC(4)_SW(4)");
    TrainingEstimator est(net);
    CostModel cost = CostModel::defaultModel();
    std::vector<TargetWorkload> targets = {
        {wl::resnet50(net.npus()), 0.75},
        {wl::gpt3(net.npus()), 0.25}};

    ScalarObjective f = makeObjective(GetParam(), est, cost, targets);
    const BatchEvaluable* batch = batchFacet(f);
    ASSERT_NE(batch, nullptr);

    Rng rng(0xFACE7);
    std::vector<Vec> pool;
    for (int i = 0; i < 33; ++i)
        pool.push_back(randomPoint(rng, net.numDims()));

    std::vector<double> out(pool.size(), -1.0);
    batch->evaluateBatch(pool.data(), pool.size(), out.data());
    for (std::size_t i = 0; i < pool.size(); ++i) {
        EXPECT_EQ(bits(out[i]), bits(f(pool[i]))) << "candidate " << i;
        EXPECT_EQ(bits(out[i]), bits(batch->evaluateOne(pool[i])));
    }

    std::unique_ptr<IncrementalEval> inc = batch->makeIncremental();
    ASSERT_NE(inc, nullptr);
    Vec base = pool[0];
    inc->setBase(base, nullptr);
    for (int step = 0; step < 60; ++step) {
        const std::size_t d = static_cast<std::size_t>(
            rng.uniformInt(0, net.numDims() - 1));
        const double v = rng.uniform(1.0, 600.0);
        Vec moved = base;
        moved[d] = v;
        EXPECT_EQ(bits(inc->probe(d, v)), bits(f(moved)))
            << "step " << step;
        // evaluate() detects the actual diff itself: a one-coordinate
        // move probes, identical input returns the cached base, and a
        // multi-coordinate move falls back to a full evaluation.
        EXPECT_EQ(bits(inc->evaluate(moved)), bits(f(moved)));
        EXPECT_EQ(bits(inc->evaluate(base)), bits(f(base)));
        Vec twoMoves = moved;
        twoMoves[(d + 1) % net.numDims()] += 5.0;
        EXPECT_EQ(bits(inc->evaluate(twoMoves)), bits(f(twoMoves)));
        inc->setBase(base, nullptr);
        if (step % 11 == 5) {
            base = moved;
            inc->setBase(base, nullptr);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    Objectives, ObjectiveFacets,
    ::testing::Values(OptimizationObjective::PerfOpt,
                      OptimizationObjective::PerfPerCostOpt),
    [](const ::testing::TestParamInfo<OptimizationObjective>& info) {
        return objectiveName(info.param);
    });

} // namespace
} // namespace libra
