/**
 * @file
 * Tests for the workload IR and the analytical model builders.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "workload/dlrm.hh"
#include "workload/resnet.hh"
#include "workload/transformer.hh"
#include "workload/zoo.hh"

namespace libra {
namespace {

TEST(Transformer, ParameterCountsMatchTableTwo)
{
    // Table II parameter counts within a few percent.
    EXPECT_NEAR(wl::turingNlg(1024).parameters, 17e9, 0.05 * 17e9);
    EXPECT_NEAR(wl::gpt3(1024).parameters, 175e9, 0.05 * 175e9);
    EXPECT_NEAR(wl::msft1T(4096).parameters, 1e12, 0.05 * 1e12);
}

TEST(Transformer, TableTwoTpSizes)
{
    EXPECT_EQ(wl::turingNlg(1024).strategy.tp, 1);
    EXPECT_EQ(wl::gpt3(1024).strategy.tp, 16);
    EXPECT_EQ(wl::msft1T(4096).strategy.tp, 128);
    EXPECT_EQ(wl::resnet50(1024).strategy.tp, 1);
}

TEST(Transformer, NoTpCommWhenTpIsOne)
{
    Workload w = wl::turingNlg(1024);
    for (const auto& layer : w.layers) {
        EXPECT_TRUE(layer.fwdComm.empty());
        EXPECT_TRUE(layer.igComm.empty());
        EXPECT_FALSE(layer.wgComm.empty());
    }
}

TEST(Transformer, MegatronCommStructure)
{
    Workload w = wl::gpt3(1024);
    ASSERT_EQ(w.layers.size(), 96u);
    const Layer& l = w.layers[0];
    // 2 activation ARs forward, 2 backward; ZeRO-2 RS+AG for grads.
    ASSERT_EQ(l.fwdComm.size(), 2u);
    EXPECT_EQ(l.fwdComm[0].type, CollectiveType::AllReduce);
    EXPECT_EQ(l.fwdComm[0].scope, CommScope::Tp);
    ASSERT_EQ(l.igComm.size(), 2u);
    ASSERT_EQ(l.wgComm.size(), 2u);
    EXPECT_EQ(l.wgComm[0].type, CollectiveType::ReduceScatter);
    EXPECT_EQ(l.wgComm[1].type, CollectiveType::AllGather);
    EXPECT_EQ(l.wgComm[0].scope, CommScope::Dp);
}

TEST(Transformer, ActivationBytesFormula)
{
    TransformerConfig c;
    c.numLayers = 1;
    c.hidden = 1000;
    c.seqLen = 100;
    c.batchPerGroup = 10;
    c.strategy = {2, 1};
    Workload w = buildTransformer(c);
    // b*s*h*2 bytes = 10*100*1000*2 = 2e6.
    EXPECT_NEAR(w.layers[0].fwdComm[0].size, 2e6, 1.0);
}

TEST(Transformer, GradientBytesShardedByTp)
{
    TransformerConfig c;
    c.numLayers = 1;
    c.hidden = 1000;
    c.strategy = {4, 2};
    Workload w = buildTransformer(c);
    // 12h^2/tp * 2B = 12e6/4*2 = 6e6.
    EXPECT_NEAR(w.layers[0].wgComm[0].size, 6e6, 1.0);
}

TEST(Transformer, ComputeScalesWithBatchAndTp)
{
    TransformerConfig c;
    c.numLayers = 2;
    c.hidden = 2048;
    c.batchPerGroup = 16;
    c.strategy = {1, 4};
    Seconds base = buildTransformer(c).totalCompute();

    c.batchPerGroup = 32;
    EXPECT_NEAR(buildTransformer(c).totalCompute(), 2.0 * base,
                1e-9 * base);

    c.batchPerGroup = 16;
    c.strategy = {4, 1};
    EXPECT_NEAR(buildTransformer(c).totalCompute(), base / 4.0,
                1e-9 * base);
}

TEST(Transformer, BackwardIsTwiceForward)
{
    Workload w = wl::gpt3(1024);
    for (const auto& l : w.layers)
        EXPECT_NEAR(l.igCompute + l.wgCompute, 2.0 * l.fwdCompute,
                    1e-12);
}

TEST(Transformer, InvalidStrategyThrows)
{
    TransformerConfig c;
    c.strategy = {0, 4};
    EXPECT_THROW(buildTransformer(c), FatalError);
}

TEST(Dlrm, EmbeddingAllToAllAcrossAllNpus)
{
    Workload w = wl::dlrm(4096);
    const Layer& emb = w.layers[0];
    ASSERT_EQ(emb.fwdComm.size(), 1u);
    EXPECT_EQ(emb.fwdComm[0].type, CollectiveType::AllToAll);
    EXPECT_EQ(emb.fwdComm[0].scope, CommScope::All);
    ASSERT_EQ(emb.igComm.size(), 1u);
    EXPECT_EQ(emb.igComm[0].type, CollectiveType::AllToAll);
}

TEST(Dlrm, MlpLayersAreDataParallel)
{
    DlrmConfig c;
    c.npus = 512;
    Workload w = buildDlrm(c);
    EXPECT_EQ(w.layers.size(),
              static_cast<std::size_t>(c.numMlpLayers) + 1);
    Bytes gradTotal = 0.0;
    for (std::size_t i = 1; i < w.layers.size(); ++i) {
        ASSERT_EQ(w.layers[i].wgComm.size(), 1u);
        gradTotal += w.layers[i].wgComm[0].size;
    }
    // All MLP grads together: 57M params * 2B.
    EXPECT_NEAR(gradTotal, 57e6 * 2.0, 1.0);
}

TEST(Dlrm, TooFewNpusThrows)
{
    DlrmConfig c;
    c.npus = 1;
    EXPECT_THROW(buildDlrm(c), FatalError);
}

TEST(Resnet, ParameterTotalPreserved)
{
    Workload w = wl::resnet50(1024);
    Bytes gradTotal = 0.0;
    for (const auto& l : w.layers)
        for (const auto& op : l.wgComm)
            gradTotal += op.size;
    EXPECT_NEAR(gradTotal, 25.6e6 * 2.0, 25.6e6 * 2.0 * 1e-6);
}

TEST(Resnet, EighteenBlocks)
{
    Workload w = wl::resnet50(1024);
    EXPECT_EQ(w.layers.size(), 18u); // 1+3+4+6+3+1 stage blocks.
    EXPECT_GT(w.totalCompute(), 0.0);
}

TEST(Zoo, TableTwoComplete)
{
    auto all = wl::tableTwo(4096);
    ASSERT_EQ(all.size(), 5u);
    EXPECT_EQ(all[0].name, "Turing-NLG");
    EXPECT_EQ(all[1].name, "GPT-3");
    EXPECT_EQ(all[2].name, "MSFT-1T");
    EXPECT_EQ(all[3].name, "DLRM");
    EXPECT_EQ(all[4].name, "ResNet-50");
    for (const auto& w : all)
        EXPECT_EQ(w.strategy.npus(), 4096);
}

TEST(Zoo, IndivisibleTpThrows)
{
    EXPECT_THROW(wl::msft1T(1000), FatalError);
}

TEST(Zoo, CommSizesOrderedBySize)
{
    // Fig. 1's trend: newer/larger models communicate more per step.
    long n = 4096;
    Bytes resnet = wl::resnet50(n).totalCommPayload();
    Bytes tnlg = wl::turingNlg(n).totalCommPayload();
    Bytes gpt3 = wl::gpt3(n).totalCommPayload();
    Bytes msft = wl::msft1T(n).totalCommPayload();
    EXPECT_LT(resnet, tnlg);
    EXPECT_LT(tnlg, gpt3);
    EXPECT_LT(gpt3, msft);
}

TEST(Workload, HelperAccessors)
{
    Workload w = wl::gpt3(1024);
    EXPECT_EQ(w.strategy.name(), "HP-(16, 64)");
    auto ops = Workload::allOps(w.layers[0]);
    EXPECT_EQ(ops.size(), 6u); // 2 fwd + 2 ig + 2 wg.
    EXPECT_GT(w.totalCommPayload(), 0.0);
}

TEST(CommScopeNames, Resolve)
{
    EXPECT_EQ(commScopeName(CommScope::Tp), "TP");
    EXPECT_EQ(commScopeName(CommScope::Dp), "DP");
    EXPECT_EQ(commScopeName(CommScope::All), "ALL");
}

} // namespace
} // namespace libra
