/**
 * @file
 * Tests for the event-driven training-loop simulator and its agreement
 * with the analytical estimator.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "core/estimator.hh"
#include "sim/training_sim.hh"
#include "topology/zoo.hh"
#include "workload/zoo.hh"

namespace libra {
namespace {

TEST(TrainingSim, AgreesWithEstimatorNoOverlap)
{
    // With many chunks the chunk pipeline converges to the analytical
    // bottleneck model; end-to-end times should agree within a few %.
    Network net = topo::fourD4K();
    Workload w = wl::msft1T(net.npus());
    BwConfig bw = net.equalBw(300.0);

    TrainingEstimator est(net);
    TrainingSimOptions opt;
    opt.chunksPerCollective = 64;
    TrainingSim sim(net, opt);

    Seconds analytic = est.estimate(w, bw);
    TrainingSimResult r = sim.simulate(w, bw);
    EXPECT_NEAR(r.total, analytic, 0.08 * analytic);
    EXPECT_GE(r.total, analytic * 0.999); // Pipeline can't beat ideal.
}

TEST(TrainingSim, OverlapNoSlowerThanNoOverlap)
{
    Network net = topo::fourD4K();
    Workload w = wl::gpt3(net.npus());
    BwConfig bw = net.equalBw(300.0);

    TrainingSimOptions noOv;
    TrainingSimOptions ov;
    ov.loop = TrainingLoop::TpDpOverlap;
    TrainingSimResult a = TrainingSim(net, noOv).simulate(w, bw);
    TrainingSimResult b = TrainingSim(net, ov).simulate(w, bw);
    EXPECT_LE(b.total, a.total * 1.001);
}

TEST(TrainingSim, ComputeOnlyWorkloadHasNoCommTime)
{
    Network net = Network::parse("RI(4)");
    Workload w;
    w.strategy = {1, 4};
    Layer l;
    l.fwdCompute = 1.0;
    l.igCompute = 0.5;
    l.wgCompute = 0.25;
    w.layers.push_back(l);

    TrainingSimResult r = TrainingSim(net).simulate(w, {10.0});
    EXPECT_NEAR(r.total, 1.75, 1e-12);
    EXPECT_DOUBLE_EQ(r.commTime, 0.0);
    EXPECT_DOUBLE_EQ(r.avgBwUtilization, 0.0);
}

TEST(TrainingSim, UtilizationWithinBounds)
{
    Network net = topo::threeD4K();
    Workload w = wl::msft1T(net.npus());
    TrainingSimResult r =
        TrainingSim(net).simulate(w, net.equalBw(300.0));
    EXPECT_GT(r.avgBwUtilization, 0.0);
    EXPECT_LE(r.avgBwUtilization, 1.0 + 1e-9);
}

TEST(TrainingSim, BetterBwSplitRaisesUtilization)
{
    // The Fig. 10 claim: a workload-aware split utilizes the fabric
    // better than EqualBW.
    Network net = topo::threeD4K();
    Workload w = wl::msft1T(net.npus());
    TrainingSim sim(net);

    TrainingSimResult equal = sim.simulate(w, net.equalBw(300.0));
    // Skew BW toward the traffic profile (dim 1 >> dim 2 >> dim 3).
    TrainingSimResult skewed =
        sim.simulate(w, BwConfig{255.0, 30.0, 15.0});
    EXPECT_GT(skewed.avgBwUtilization, equal.avgBwUtilization);
    EXPECT_LT(skewed.total, equal.total);
}

TEST(TrainingSim, MismatchedWorkloadThrows)
{
    Network net = topo::fourD4K();
    Workload w = wl::gpt3(1024);
    EXPECT_THROW(TrainingSim(net).simulate(w, net.equalBw(100.0)),
                 FatalError);
}

TEST(TrainingSim, DpOnlyWorkloadOnTorus)
{
    Network net = topo::threeDTorus();
    Workload w = wl::resnet50(net.npus());
    TrainingSimResult r =
        TrainingSim(net).simulate(w, net.equalBw(300.0));
    EXPECT_GT(r.total, 0.0);
    EXPECT_GT(r.commTime, 0.0);
    ASSERT_EQ(r.dimBusy.size(), 3u);
    // DP spans all dims; with prefix reduction dim 1 works hardest.
    EXPECT_GT(r.dimBusy[0], r.dimBusy[1]);
    EXPECT_GT(r.dimBusy[1], r.dimBusy[2]);
}

/** Parameterized: simulator tracks estimator across BW budgets. */
class TrainingSimSweep : public ::testing::TestWithParam<double>
{};

TEST_P(TrainingSimSweep, TracksEstimator)
{
    Network net = topo::threeD4K();
    Workload w = wl::gpt3(net.npus());
    BwConfig bw = net.equalBw(GetParam());
    Seconds analytic = TrainingEstimator(net).estimate(w, bw);
    TrainingSimResult r = TrainingSim(net).simulate(w, bw);
    EXPECT_NEAR(r.total, analytic, 0.10 * analytic);
}

INSTANTIATE_TEST_SUITE_P(Budgets, TrainingSimSweep,
                         ::testing::Values(100.0, 300.0, 600.0, 1000.0));

} // namespace
} // namespace libra
