/**
 * @file
 * Round-trip property test for the study-file language: for a corpus
 * covering every directive in study_config.hh, serializing the parsed
 * LibraInputs back to text and reparsing must reproduce the inputs
 * exactly (parse ∘ serialize ∘ parse == parse), and the serializer
 * must be a fixpoint (serialize ∘ parse ∘ serialize == serialize).
 *
 * WORKLOAD_FILE is the one deliberately unserializable directive — a
 * file-loaded workload has no study-file name — and is pinned as such.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "core/study_config.hh"

namespace libra {
namespace {

/**
 * The directive corpus. Every keyword the parser understands appears
 * in at least one entry: NETWORK, TOTAL_BW, OBJECTIVE, LOOP,
 * CONSTRAINT, WORKLOAD (+WEIGHT), NORMALIZE_WEIGHTS, IN_NETWORK,
 * DOLLAR_CAP, THREADS, SEED, STARTS, MAX_EVALS, SOLVER, BACKEND, and
 * COST.
 */
const char* kCorpus[] = {
    // Minimal study.
    "NETWORK RI(4)_SW(8)\nWORKLOAD resnet50\n",
    // Objectives and loops.
    "NETWORK RI(16)_FC(8)_SW(32)\n"
    "TOTAL_BW 400\n"
    "OBJECTIVE PERF_PER_COST\n"
    "LOOP TP_DP_OVERLAP\n"
    "WORKLOAD gpt3\n",
    "NETWORK SW(16)_SW(8)_SW(4)\n"
    "OBJECTIVE PERF\n"
    "LOOP NO_OVERLAP\n"
    "WORKLOAD msft1t\n",
    // Constraints (absolute, relational, odd spacing).
    "NETWORK RI(4)_FC(8)_RI(4)_SW(32)\n"
    "TOTAL_BW 500\n"
    "CONSTRAINT B4 <= 50\n"
    "CONSTRAINT   B1 >= B2\n"
    "CONSTRAINT B2  ==  2 * B3\n"
    "WORKLOAD turing-nlg\n",
    // Weights, normalization, multiple targets.
    "NETWORK RI(16)_FC(8)_SW(32)\n"
    "WORKLOAD gpt3 WEIGHT 2.5\n"
    "WORKLOAD msft1t WEIGHT 0.125\n"
    "WORKLOAD dlrm\n"
    "NORMALIZE_WEIGHTS\n",
    // In-network collectives plus search knobs.
    "NETWORK FC(8)_RI(16)_SW(8)\n"
    "IN_NETWORK\n"
    "SEED 7\n"
    "STARTS 5\n"
    "WORKLOAD msft1t\n",
    // Per-start eval budget (what prune's screening rounds set; the
    // wire form of a screened point depends on this round-tripping).
    "NETWORK RI(4)_SW(8)\n"
    "MAX_EVALS 240\n"
    "WORKLOAD resnet50\n",
    "NETWORK RI(4)_SW(8)\n"
    "STARTS 1\n"
    "MAX_EVALS 120\n"
    "SOLVER cmaes\n"
    "EXPLORE prune\n"
    "WORKLOAD resnet50\n",
    // Dollar cap (implies a relaxed BW budget) and threads.
    "NETWORK RI(4)_SW(4)_SW(8)_SW(16)\n"
    "TOTAL_BW 800\n"
    "DOLLAR_CAP 1.5e7\n"
    "THREADS 8\n"
    "WORKLOAD msft1t WEIGHT 1.0\n",
    // Solver pipelines: a single global strategy and a full chain.
    "NETWORK RI(4)_SW(8)\n"
    "SOLVER cmaes\n"
    "WORKLOAD resnet50\n",
    "NETWORK RI(4)_SW(8)\n"
    "SOLVER de,pattern-search\n"
    "WORKLOAD resnet50\n",
    "NETWORK RI(4)_SW(8)\n"
    "SOLVER subgradient,pattern-search,nelder-mead\n"
    "WORKLOAD resnet50\n",
    // Timing backends: the simulation backend and the (normalized-
    // away) explicit default.
    "NETWORK RI(4)_SW(8)\n"
    "BACKEND chunk-sim\n"
    "WORKLOAD resnet50\n",
    "NETWORK RI(4)_SW(8)\n"
    "BACKEND analytical\n"
    "WORKLOAD resnet50\n",
    // Exploration strategies: bare, parameterized (out-of-order keys
    // and explicit defaults canonicalize), and the normalized-away
    // explicit default.
    "NETWORK RI(4)_SW(8)\n"
    "EXPLORE prune\n"
    "WORKLOAD resnet50\n",
    "NETWORK RI(4)_SW(8)\n"
    "EXPLORE prune, rounds=2, keep=0.25, screen-starts=1\n"
    "WORKLOAD resnet50\n",
    "NETWORK RI(4)_SW(8)\n"
    "EXPLORE exhaustive\n"
    "WORKLOAD resnet50\n",
    // Cost-model overrides at several levels, non-integral prices.
    "NETWORK RI(4)_FC(8)_RI(4)_SW(32)\n"
    "COST Pod LINK 9.9 SWITCH 21.5 NIC 40.0\n"
    "COST Package LINK 3.25\n"
    "COST Chiplet LINK 1.75\n"
    "WORKLOAD gpt3\n",
    // Everything at once.
    "NETWORK RI(16)_FC(8)_SW(32)\n"
    "TOTAL_BW 123.456\n"
    "OBJECTIVE PERF_PER_COST\n"
    "LOOP TP_DP_OVERLAP\n"
    "CONSTRAINT B3 <= 50\n"
    "CONSTRAINT B1 >= B2\n"
    "WORKLOAD gpt3 WEIGHT 0.3333333333333333\n"
    "WORKLOAD turing-nlg WEIGHT 3\n"
    "NORMALIZE_WEIGHTS\n"
    "IN_NETWORK\n"
    "DOLLAR_CAP 2.75e6\n"
    "THREADS 3\n"
    "SEED 42\n"
    "STARTS 4\n"
    "COST Node LINK 5.5 SWITCH 14.25\n",
};

TEST(StudyRoundTrip, ParseSerializeParseIsIdentity)
{
    for (const char* text : kCorpus) {
        SCOPED_TRACE(text);
        LibraInputs first = parseStudyConfigString(text);
        std::string serialized = studyConfigToString(first);
        LibraInputs second = parseStudyConfigString(serialized);
        EXPECT_TRUE(studyInputsEqual(first, second)) << serialized;
    }
}

TEST(StudyRoundTrip, SerializeIsAFixpoint)
{
    for (const char* text : kCorpus) {
        SCOPED_TRACE(text);
        std::string once =
            studyConfigToString(parseStudyConfigString(text));
        std::string twice =
            studyConfigToString(parseStudyConfigString(once));
        EXPECT_EQ(once, twice);
    }
}

TEST(StudyRoundTrip, EqualityIsDiscriminating)
{
    LibraInputs base = parseStudyConfigString(
        "NETWORK RI(4)_SW(8)\nTOTAL_BW 300\nWORKLOAD resnet50\n");
    EXPECT_TRUE(studyInputsEqual(base, base));

    auto variant = [](const char* text) {
        return parseStudyConfigString(text);
    };
    EXPECT_FALSE(studyInputsEqual(
        base,
        variant("NETWORK RI(4)_SW(8)\nTOTAL_BW 301\n"
                "WORKLOAD resnet50\n")));
    EXPECT_FALSE(studyInputsEqual(
        base, variant("NETWORK RI(4)_SW(8)\nTOTAL_BW 300\n"
                      "WORKLOAD dlrm\n")));
    EXPECT_FALSE(studyInputsEqual(
        base, variant("NETWORK RI(4)_SW(8)\nTOTAL_BW 300\n"
                      "WORKLOAD resnet50 WEIGHT 2\n")));
    EXPECT_FALSE(studyInputsEqual(
        base, variant("NETWORK RI(4)_SW(8)\nTOTAL_BW 300\n"
                      "WORKLOAD resnet50\nIN_NETWORK\n")));
    EXPECT_FALSE(studyInputsEqual(
        base, variant("NETWORK RI(4)_SW(8)\nTOTAL_BW 300\n"
                      "WORKLOAD resnet50\nCOST Pod LINK 9\n")));
    EXPECT_FALSE(studyInputsEqual(
        base, variant("NETWORK RI(4)_SW(8)\nTOTAL_BW 300\n"
                      "WORKLOAD resnet50\nSOLVER cmaes\n")));
    EXPECT_FALSE(studyInputsEqual(
        variant("NETWORK RI(4)_SW(8)\nTOTAL_BW 300\n"
                "WORKLOAD resnet50\nSOLVER cmaes\n"),
        variant("NETWORK RI(4)_SW(8)\nTOTAL_BW 300\n"
                "WORKLOAD resnet50\nSOLVER de\n")));
    EXPECT_FALSE(studyInputsEqual(
        base, variant("NETWORK RI(4)_SW(8)\nTOTAL_BW 300\n"
                      "WORKLOAD resnet50\nMAX_EVALS 64\n")));
}

TEST(StudyRoundTrip, MaxEvalsDirectiveValidatesAndDefaults)
{
    // 0 is the in-memory default (unlimited) and is not emitted.
    LibraInputs zero = parseStudyConfigString(
        "NETWORK RI(4)_SW(8)\nMAX_EVALS 0\nWORKLOAD resnet50\n");
    EXPECT_EQ(zero.config.search.maxEvalsPerStart, 0);
    EXPECT_EQ(studyConfigToString(zero).find("MAX_EVALS"),
              std::string::npos);

    LibraInputs set = parseStudyConfigString(
        "NETWORK RI(4)_SW(8)\nMAX_EVALS 240\nWORKLOAD resnet50\n");
    EXPECT_EQ(set.config.search.maxEvalsPerStart, 240);
    EXPECT_NE(studyConfigToString(set).find("MAX_EVALS 240\n"),
              std::string::npos);

    EXPECT_THROW(parseStudyConfigString(
                     "NETWORK RI(4)_SW(8)\nMAX_EVALS -1\n"
                     "WORKLOAD resnet50\n"),
                 FatalError);
    EXPECT_THROW(parseStudyConfigString(
                     "NETWORK RI(4)_SW(8)\nMAX_EVALS 2.5\n"
                     "WORKLOAD resnet50\n"),
                 FatalError);
    EXPECT_THROW(parseStudyConfigString(
                     "NETWORK RI(4)_SW(8)\nMAX_EVALS nan\n"
                     "WORKLOAD resnet50\n"),
                 FatalError);
}

TEST(StudyRoundTrip, ExploreDirectiveCanonicalizesAndDiscriminates)
{
    // The parser stores the canonical spec, so explicit defaults and
    // key order vanish before serialization.
    LibraInputs in = parseStudyConfigString(
        "NETWORK RI(4)_SW(8)\n"
        "EXPLORE prune, rounds=2, keep=0.5\n"
        "WORKLOAD resnet50\n");
    EXPECT_EQ(in.explore, "prune,rounds=2");
    EXPECT_NE(studyConfigToString(in).find("EXPLORE prune,rounds=2\n"),
              std::string::npos);

    LibraInputs def = parseStudyConfigString(
        "NETWORK RI(4)_SW(8)\nEXPLORE exhaustive\n"
        "WORKLOAD resnet50\n");
    EXPECT_EQ(def.explore, "");
    EXPECT_EQ(studyConfigToString(def).find("EXPLORE"),
              std::string::npos);

    LibraInputs base = parseStudyConfigString(
        "NETWORK RI(4)_SW(8)\nWORKLOAD resnet50\n");
    EXPECT_TRUE(studyInputsEqual(base, def));
    EXPECT_FALSE(studyInputsEqual(base, in));
}

TEST(StudyRoundTrip, UnknownExplorerIsReportedWithItsLine)
{
    try {
        parseStudyConfigString("NETWORK RI(4)_SW(8)\n"
                               "WORKLOAD resnet50\n"
                               "EXPLORE warp-drive\n");
        FAIL() << "expected FatalError";
    } catch (const FatalError& e) {
        EXPECT_NE(std::string(e.what()).find("line 3"),
                  std::string::npos)
            << e.what();
        EXPECT_NE(std::string(e.what()).find("warp-drive"),
                  std::string::npos)
            << e.what();
    }
}

TEST(StudyRoundTrip, UnknownSolverIsReportedWithItsLine)
{
    try {
        parseStudyConfigString("NETWORK RI(4)_SW(8)\n"
                               "SOLVER warp-drive\n"
                               "WORKLOAD resnet50\n");
        FAIL() << "expected FatalError";
    } catch (const FatalError& e) {
        EXPECT_NE(std::string(e.what()).find("line 2"),
                  std::string::npos)
            << e.what();
        EXPECT_NE(std::string(e.what()).find("warp-drive"),
                  std::string::npos)
            << e.what();
    }
}

TEST(StudyRoundTrip, SerializedNumbersSurviveExactly)
{
    // Shortest round-trip formatting must reproduce awkward doubles
    // bit-exactly through serialize -> parse.
    LibraInputs in = parseStudyConfigString(
        "NETWORK RI(4)_SW(8)\nTOTAL_BW 0.30000000000000004\n"
        "WORKLOAD resnet50 WEIGHT 0.1\nDOLLAR_CAP 12345678.901234567\n");
    LibraInputs back =
        parseStudyConfigString(studyConfigToString(in));
    EXPECT_EQ(back.config.totalBw, 0.30000000000000004);
    EXPECT_EQ(back.targets[0].weight, 0.1);
    EXPECT_EQ(back.config.budgetCap, 12345678.901234567);
}

TEST(StudyRoundTrip, UnserializableInputsAreReported)
{
    // WORKLOAD_FILE / programmatic workloads have no study-file name.
    LibraInputs custom = parseStudyConfigString(
        "NETWORK RI(4)_SW(8)\nWORKLOAD resnet50\n");
    custom.targets[0].workload.layers[0].fwdCompute += 1.0;
    EXPECT_THROW(studyConfigToString(custom), FatalError);

    LibraInputs fn = parseStudyConfigString(
        "NETWORK RI(4)_SW(8)\nWORKLOAD resnet50\n");
    fn.config.estimator.commTimeFn =
        [](CollectiveType, Bytes, const std::vector<DimSpan>&,
           const BwConfig&, bool) { return CollectiveTiming{}; };
    EXPECT_THROW(studyConfigToString(fn), FatalError);

    LibraInputs relax = parseStudyConfigString(
        "NETWORK RI(4)_SW(8)\nWORKLOAD resnet50\n");
    relax.config.relaxTotalBw = true; // No DOLLAR_CAP to imply it.
    EXPECT_THROW(studyConfigToString(relax), FatalError);
}

} // namespace
} // namespace libra
