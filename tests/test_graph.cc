/**
 * @file
 * Tests for the NPU-level link-graph expansion.
 */

#include <gtest/gtest.h>

#include "runtime/graph.hh"
#include "topology/zoo.hh"

namespace libra {
namespace {

TEST(Graph, RingLinkStructure)
{
    Network net = Network::parse("RI(4)");
    TopologyGraph g(net, {10.0});
    // 4 NPUs x 2 directions = 8 directed links at B/2 each.
    EXPECT_EQ(g.links().size(), 8u);
    for (const auto& l : g.links()) {
        EXPECT_DOUBLE_EQ(l.bw, 5.0);
        EXPECT_EQ(l.egressGroup, -1);
        // Neighbours only.
        long diff = std::abs(l.src - l.dst);
        EXPECT_TRUE(diff == 1 || diff == 3);
    }
}

TEST(Graph, TwoRingIsSingleWirePair)
{
    Network net = Network::parse("RI(2)");
    TopologyGraph g(net, {10.0});
    ASSERT_EQ(g.links().size(), 2u);
    EXPECT_DOUBLE_EQ(g.links()[0].bw, 10.0);
}

TEST(Graph, FullyConnectedSplitsBandwidth)
{
    Network net = Network::parse("FC(4)");
    TopologyGraph g(net, {30.0});
    // 4*3 directed pairs at B/(g-1) = 10 each.
    EXPECT_EQ(g.links().size(), 12u);
    for (const auto& l : g.links())
        EXPECT_DOUBLE_EQ(l.bw, 10.0);
}

TEST(Graph, SwitchSharesUplink)
{
    Network net = Network::parse("SW(4)");
    TopologyGraph g(net, {40.0});
    EXPECT_EQ(g.links().size(), 12u);
    for (const auto& l : g.links()) {
        EXPECT_DOUBLE_EQ(l.bw, 40.0); // Full BW per transfer...
        EXPECT_GE(l.egressGroup, 0);  // ...but serialized per NPU.
        EXPECT_GE(l.ingressGroup, 0);
    }
    // 4 egress + 4 ingress shared groups.
    EXPECT_EQ(g.numSharedGroups(), 8);
}

TEST(Graph, TorusHasSixNeighbourLinksPerNode)
{
    Network net = topo::threeDTorus(); // RI(4)^3.
    TopologyGraph g(net, net.equalBw(300.0));
    EXPECT_EQ(g.numNodes(), 64);
    // Each dim contributes 2 directed links per NPU: 64*6 total.
    EXPECT_EQ(g.links().size(), 64u * 6u);
    for (long id = 0; id < 64; ++id)
        EXPECT_EQ(g.outLinks(id).size(), 6u);
}

TEST(Graph, MultiDimMixedStructure)
{
    Network net = Network::parse("RI(4)_SW(2)");
    TopologyGraph g(net, {20.0, 10.0});
    // Ring: 8 npus * 2 = 16 links; SW(2): 4 groups * 2 links = 8.
    EXPECT_EQ(g.links().size(), 24u);
    int swLinks = 0;
    for (const auto& l : g.links())
        if (l.dim == 1)
            ++swLinks;
    EXPECT_EQ(swLinks, 8);
}

TEST(Graph, LinksConnectOnlyGroupPeers)
{
    Network net = Network::parse("RI(4)_RI(4)");
    TopologyGraph g(net, {10.0, 10.0});
    for (const auto& l : g.links()) {
        auto cs = net.coordsOf(l.src);
        auto cd = net.coordsOf(l.dst);
        // Exactly the link's dimension coordinate differs.
        for (std::size_t d = 0; d < net.numDims(); ++d) {
            if (d == l.dim)
                EXPECT_NE(cs[d], cd[d]);
            else
                EXPECT_EQ(cs[d], cd[d]);
        }
    }
}

} // namespace
} // namespace libra
