/**
 * @file
 * Tests for the chunk-level pipeline simulator (Fig. 9).
 */

#include <gtest/gtest.h>

#include "sim/chunk_timeline.hh"

namespace libra {
namespace {

CollectiveJob
arJob(Bytes size, std::vector<DimSpan> spans, int chunks,
      SchedulePolicy policy = SchedulePolicy::FixedAscending)
{
    CollectiveJob j;
    j.type = CollectiveType::AllReduce;
    j.size = size;
    j.spans = std::move(spans);
    j.numChunks = chunks;
    j.policy = policy;
    return j;
}

TEST(ChunkTimeline, SingleDimSingleChunkMatchesAnalytic)
{
    // AR on one dim of 4 at 10 GB/s: 2*1e9*(3/4)/10e9 = 0.15 s.
    ChunkTimeline tl(1, {10.0});
    Seconds t = tl.collectiveTime(arJob(1e9, {{0, 4}}, 1));
    EXPECT_NEAR(t, 0.15, 1e-9);
}

TEST(ChunkTimeline, ManyChunksApproachAnalyticBottleneck)
{
    // With balanced BW the pipelined time approaches the analytical
    // bottleneck time as chunk count grows.
    std::vector<DimSpan> spans{{0, 4}, {1, 4}, {2, 4}};
    auto traffic =
        multiRailTraffic(CollectiveType::AllReduce, 1e9, spans);
    BwConfig bw{traffic[0] / 1e9, traffic[1] / 1e9, traffic[2] / 1e9};
    Seconds analytic =
        multiRailTime(CollectiveType::AllReduce, 1e9, spans, bw).time;

    ChunkTimeline tl(3, bw);
    Seconds coarse = tl.collectiveTime(arJob(1e9, spans, 4));
    Seconds fine = tl.collectiveTime(arJob(1e9, spans, 256));

    EXPECT_GT(coarse, analytic);           // Pipeline fill overhead.
    EXPECT_LT(fine, coarse);               // More chunks pipeline better.
    EXPECT_NEAR(fine, analytic, 0.05 * analytic);
}

TEST(ChunkTimeline, UnderprovisionedDimBottlenecks)
{
    // Fig. 9(a): a starving dim 1 keeps other dims underutilized.
    std::vector<DimSpan> spans{{0, 4}, {1, 4}, {2, 4}};
    ChunkTimeline starved(3, {1.0, 100.0, 100.0});
    TimelineResult r = starved.run({arJob(1e9, spans, 8)});
    EXPECT_GT(r.dimBusy[0] / r.makespan, 0.95);
    EXPECT_LT(r.dimBusy[1] / r.makespan, 0.2);
    EXPECT_LT(r.dimBusy[2] / r.makespan, 0.2);
}

TEST(ChunkTimeline, BalancedBwMaximizesUtilization)
{
    std::vector<DimSpan> spans{{0, 4}, {1, 4}, {2, 4}};
    auto traffic =
        multiRailTraffic(CollectiveType::AllReduce, 1e9, spans);
    BwConfig balanced{traffic[0] / 1e9, traffic[1] / 1e9,
                      traffic[2] / 1e9};
    ChunkTimeline tlBal(3, balanced);
    ChunkTimeline tlEq(3, BwConfig(3, 1.0));
    double utilBal =
        tlBal.run({arJob(1e9, spans, 64)}).avgBwUtilization;
    double utilEq = tlEq.run({arJob(1e9, spans, 64)}).avgBwUtilization;
    EXPECT_GT(utilBal, utilEq);
    EXPECT_GT(utilBal, 0.8);
}

TEST(ChunkTimeline, RecordCountsAreExact)
{
    std::vector<DimSpan> spans{{0, 4}, {1, 4}};
    ChunkTimeline tl(2, {10.0, 10.0});
    TimelineResult r = tl.run({arJob(1e9, spans, 8)});
    // AR on 2 dims = 4 stages per chunk (2 RS + 2 AG).
    EXPECT_EQ(r.records.size(), 8u * 4u);

    int rsCount = 0, agCount = 0;
    for (const auto& rec : r.records)
        (rec.allGather ? agCount : rsCount)++;
    EXPECT_EQ(rsCount, 16);
    EXPECT_EQ(agCount, 16);
}

TEST(ChunkTimeline, DimSerializesOps)
{
    // Records on the same dimension must not overlap in time.
    std::vector<DimSpan> spans{{0, 4}, {1, 4}};
    ChunkTimeline tl(2, {7.0, 3.0});
    TimelineResult r = tl.run({arJob(2e9, spans, 16)});
    for (std::size_t a = 0; a < r.records.size(); ++a)
        for (std::size_t b = a + 1; b < r.records.size(); ++b) {
            if (r.records[a].dim != r.records[b].dim)
                continue;
            bool disjoint = r.records[a].end <= r.records[b].start + 1e-12
                            || r.records[b].end <=
                                   r.records[a].start + 1e-12;
            EXPECT_TRUE(disjoint);
        }
}

TEST(ChunkTimeline, ConservesVolumePerDim)
{
    // Busy time * BW per dim equals the analytical traffic.
    std::vector<DimSpan> spans{{0, 4}, {1, 8}};
    BwConfig bw{13.0, 7.0};
    ChunkTimeline tl(2, bw);
    TimelineResult r = tl.run({arJob(3e9, spans, 32)});
    auto traffic =
        multiRailTraffic(CollectiveType::AllReduce, 3e9, spans);
    EXPECT_NEAR(r.dimBusy[0] * bw[0] * 1e9, traffic[0], traffic[0] * 1e-9);
    EXPECT_NEAR(r.dimBusy[1] * bw[1] * 1e9, traffic[1], traffic[1] * 1e-9);
}

TEST(ChunkTimeline, StandaloneAllGatherVolumes)
{
    // AG alone: dim-i traffic m(g_i-1)/q_i with ascending prefixes.
    std::vector<DimSpan> spans{{0, 4}, {1, 8}};
    BwConfig bw{10.0, 10.0};
    ChunkTimeline tl(2, bw);
    CollectiveJob j;
    j.type = CollectiveType::AllGather;
    j.size = 1e9;
    j.spans = spans;
    j.numChunks = 16;
    TimelineResult r = tl.run({j});
    auto traffic =
        multiRailTraffic(CollectiveType::AllGather, 1e9, spans);
    EXPECT_NEAR(r.dimBusy[0] * bw[0] * 1e9, traffic[0],
                traffic[0] * 1e-9);
    EXPECT_NEAR(r.dimBusy[1] * bw[1] * 1e9, traffic[1],
                traffic[1] * 1e-9);
}

TEST(ChunkTimeline, AllToAllVolumes)
{
    std::vector<DimSpan> spans{{0, 4}, {1, 8}};
    BwConfig bw{10.0, 10.0};
    ChunkTimeline tl(2, bw);
    CollectiveJob j;
    j.type = CollectiveType::AllToAll;
    j.size = 1e9;
    j.spans = spans;
    j.numChunks = 8;
    TimelineResult r = tl.run({j});
    auto traffic =
        multiRailTraffic(CollectiveType::AllToAll, 1e9, spans);
    EXPECT_NEAR(r.dimBusy[0] * bw[0] * 1e9, traffic[0],
                traffic[0] * 1e-9);
    EXPECT_NEAR(r.dimBusy[1] * bw[1] * 1e9, traffic[1],
                traffic[1] * 1e-9);
}

TEST(ChunkTimeline, GreedyNoWorseOnImbalance)
{
    // On a BW split that is wrong for the fixed order, greedy
    // (Themis-style) must not be slower.
    std::vector<DimSpan> spans{{0, 4}, {1, 4}, {2, 4}};
    BwConfig bw{5.0, 30.0, 10.0};
    ChunkTimeline tl(3, bw);
    Seconds fixed = tl.collectiveTime(arJob(1e9, spans, 64));
    Seconds greedy = tl.collectiveTime(
        arJob(1e9, spans, 64, SchedulePolicy::Greedy));
    EXPECT_LE(greedy, fixed * 1.001);
}

TEST(ChunkTimeline, ReleaseTimeDelaysJob)
{
    std::vector<DimSpan> spans{{0, 4}};
    ChunkTimeline tl(1, {10.0});
    CollectiveJob j = arJob(1e9, spans, 4);
    j.releaseTime = 5.0;
    TimelineResult r = tl.run({j});
    EXPECT_GE(r.records.front().start, 5.0);
    EXPECT_NEAR(r.makespan, 5.0 + 0.15, 1e-6);
}

TEST(ChunkTimeline, TwoJobsContendOnSharedDim)
{
    std::vector<DimSpan> spans{{0, 4}};
    ChunkTimeline tl(1, {10.0});
    CollectiveJob j = arJob(1e9, spans, 4);
    TimelineResult r = tl.run({j, j});
    // Two identical ARs on one dim take twice one AR.
    EXPECT_NEAR(r.makespan, 0.30, 1e-6);
}

TEST(ChunkTimeline, RenderProducesRows)
{
    std::vector<DimSpan> spans{{0, 4}, {1, 4}};
    ChunkTimeline tl(2, {10.0, 10.0});
    TimelineResult r = tl.run({arJob(1e9, spans, 4)});
    std::string art = r.render(2, 40);
    EXPECT_NE(art.find("Dim1"), std::string::npos);
    EXPECT_NE(art.find("Dim2"), std::string::npos);
    EXPECT_NE(art.find("% busy"), std::string::npos);
}

/** Property: makespan decreases (weakly) as bottleneck BW increases. */
class TimelineMonotonicity : public ::testing::TestWithParam<double>
{};

TEST_P(TimelineMonotonicity, MoreBwNotSlower)
{
    std::vector<DimSpan> spans{{0, 4}, {1, 8}};
    ChunkTimeline slow(2, {GetParam(), 10.0});
    ChunkTimeline fast(2, {GetParam() * 2.0, 10.0});
    Seconds ts = slow.collectiveTime(arJob(1e9, spans, 16));
    Seconds tf = fast.collectiveTime(arJob(1e9, spans, 16));
    EXPECT_LE(tf, ts + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Bw, TimelineMonotonicity,
                         ::testing::Values(1.0, 5.0, 20.0, 100.0));

} // namespace
} // namespace libra
