/**
 * @file
 * Tests for common utilities: units, logging, RNG, and table printing.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "common/logging.hh"
#include "common/random.hh"
#include "common/table.hh"
#include "common/units.hh"

namespace libra {
namespace {

TEST(Units, TransferTime)
{
    // 1 GB over 1 GB/s is exactly one second.
    EXPECT_DOUBLE_EQ(transferTime(1e9, 1.0), 1.0);
    // 100 GB over 50 GB/s is two seconds.
    EXPECT_DOUBLE_EQ(transferTime(100e9, 50.0), 2.0);
    // Zero bytes take zero time.
    EXPECT_DOUBLE_EQ(transferTime(0.0, 123.0), 0.0);
}

TEST(Units, ComputeTime)
{
    // 234 TFLOPs of work at 234 TFLOPS takes one second.
    EXPECT_DOUBLE_EQ(computeTime(234e12, 234.0), 1.0);
}

TEST(Units, Constants)
{
    EXPECT_DOUBLE_EQ(kGB, 1e9);
    EXPECT_DOUBLE_EQ(kFp16Bytes, 2.0);
}

TEST(Logging, FatalThrowsFatalError)
{
    EXPECT_THROW(fatal("bad config: ", 42), FatalError);
    try {
        fatal("value=", 7);
    } catch (const FatalError& e) {
        EXPECT_NE(std::string(e.what()).find("value=7"),
                  std::string::npos);
    }
}

TEST(Logging, InformAndWarnDoNotThrow)
{
    setInformEnabled(false);
    EXPECT_NO_THROW(inform("quiet"));
    setInformEnabled(true);
    EXPECT_NO_THROW(warn("just a warning ", 1));
}

TEST(Rng, Deterministic)
{
    Rng a(42);
    Rng b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_DOUBLE_EQ(a.uniform(0, 1), b.uniform(0, 1));
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1);
    Rng b(2);
    bool anyDiff = false;
    for (int i = 0; i < 16 && !anyDiff; ++i)
        anyDiff = a.uniform(0, 1) != b.uniform(0, 1);
    EXPECT_TRUE(anyDiff);
}

TEST(Rng, UniformRange)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        double v = rng.uniform(2.0, 5.0);
        EXPECT_GE(v, 2.0);
        EXPECT_LT(v, 5.0);
    }
}

TEST(Rng, UniformIntRange)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        int v = rng.uniformInt(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
    }
}

TEST(Rng, SimplexPointSumsToTotal)
{
    Rng rng(11);
    for (int trial = 0; trial < 20; ++trial) {
        auto p = rng.simplexPoint(4, 100.0);
        ASSERT_EQ(p.size(), 4u);
        double sum = 0.0;
        for (double x : p) {
            EXPECT_GT(x, 0.0);
            sum += x;
        }
        EXPECT_NEAR(sum, 100.0, 1e-9);
    }
}

TEST(Table, AlignedOutput)
{
    Table t("demo");
    t.header({"a", "bbbb"});
    t.row({"xx", "1"});
    std::ostringstream oss;
    t.print(oss);
    std::string s = oss.str();
    EXPECT_NE(s.find("== demo =="), std::string::npos);
    EXPECT_NE(s.find("bbbb"), std::string::npos);
    EXPECT_NE(s.find("xx"), std::string::npos);
}

TEST(Table, CsvOutput)
{
    Table t;
    t.header({"x", "y"});
    t.row({"1", "2"});
    std::ostringstream oss;
    t.printCsv(oss);
    EXPECT_EQ(oss.str(), "x,y\n1,2\n");
}

TEST(Table, NumFormatting)
{
    EXPECT_EQ(Table::num(1.23456, 2), "1.23");
    EXPECT_EQ(Table::num(2.0, 0), "2");
}

TEST(TableDeathTest, RowWidthMismatchPanics)
{
    Table t;
    t.header({"a", "b"});
    EXPECT_DEATH(t.row({"only-one"}), "panic");
}

} // namespace
} // namespace libra
