/**
 * @file
 * Tests for the iterative searches: subgradient, pattern search,
 * Nelder-Mead, and the multistart driver.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "solver/multistart.hh"
#include "solver/nelder_mead.hh"
#include "solver/pattern_search.hh"
#include "solver/qp.hh"
#include "solver/subgradient.hh"

namespace libra {
namespace {

/** Convex separable model: sum of a_i / x_i, the LIBRA time shape. */
ScalarObjective
inverseSum(Vec weights)
{
    return [weights = std::move(weights)](const Vec& x) {
        double s = 0.0;
        for (std::size_t i = 0; i < x.size(); ++i)
            s += weights[i] / std::max(x[i], 1e-12);
        return s;
    };
}

/**
 * Analytic optimum of min sum a_i/x_i s.t. sum x_i = T:
 * x_i = T * sqrt(a_i) / sum_j sqrt(a_j).
 */
Vec
inverseSumOptimum(const Vec& a, double total)
{
    double denom = 0.0;
    for (double v : a)
        denom += std::sqrt(v);
    Vec x(a.size());
    for (std::size_t i = 0; i < a.size(); ++i)
        x[i] = total * std::sqrt(a[i]) / denom;
    return x;
}

TEST(NumericGradient, MatchesAnalytic)
{
    auto f = [](const Vec& x) { return x[0] * x[0] + 3.0 * x[1]; };
    Vec g = numericGradient(f, {2.0, 5.0});
    EXPECT_NEAR(g[0], 4.0, 1e-4);
    EXPECT_NEAR(g[1], 3.0, 1e-4);
}

TEST(Subgradient, SolvesWaterFilling)
{
    Vec a{16.0, 4.0, 1.0};
    ConstraintSet cs(3);
    cs.addTotalBw(70.0);
    cs.addLowerBounds(0.1);

    SearchResult r =
        projectedSubgradient(inverseSum(a), cs, {70.0 / 3, 70.0 / 3,
                                                 70.0 / 3});
    Vec want = inverseSumOptimum(a, 70.0); // (40, 20, 10).
    auto f = inverseSum(a);
    EXPECT_NEAR(r.value, f(want), f(want) * 0.01);
}

TEST(PatternSearch, RefinesToOptimum)
{
    Vec a{9.0, 1.0};
    ConstraintSet cs(2);
    cs.addTotalBw(40.0);
    cs.addLowerBounds(0.1);

    SearchResult r = patternSearch(inverseSum(a), cs, {20.0, 20.0});
    Vec want = inverseSumOptimum(a, 40.0); // (30, 10).
    EXPECT_NEAR(r.x[0], want[0], 0.3);
    EXPECT_NEAR(r.x[1], want[1], 0.3);
}

TEST(PatternSearch, NeverWorseThanStart)
{
    Vec a{5.0, 2.0, 1.0, 7.0};
    ConstraintSet cs(4);
    cs.addTotalBw(100.0);
    cs.addLowerBounds(0.1);
    auto f = inverseSum(a);
    Vec x0{25.0, 25.0, 25.0, 25.0};
    SearchResult r = patternSearch(f, cs, x0);
    EXPECT_LE(r.value, f(x0) + 1e-12);
    EXPECT_TRUE(cs.feasible(r.x, 1e-5));
}

TEST(NelderMead, FindsConstrainedMinimum)
{
    Vec a{16.0, 1.0};
    ConstraintSet cs(2);
    cs.addTotalBw(50.0);
    cs.addLowerBounds(0.1);
    SearchResult r = nelderMead(inverseSum(a), cs, {25.0, 25.0});
    Vec want = inverseSumOptimum(a, 50.0); // (40, 10).
    auto f = inverseSum(a);
    EXPECT_NEAR(r.value, f(want), f(want) * 0.02);
    EXPECT_TRUE(cs.feasible(r.x, 1e-5));
}

TEST(Multistart, EscapesLocalMinimaOnNonconvex)
{
    // f has a poor local basin near x0=(1,9) and a global one at ~(9,1).
    auto f = [](const Vec& x) {
        auto bump = [](double cx, double cy, double depth, const Vec& p) {
            double dx = p[0] - cx;
            double dy = p[1] - cy;
            return -depth * std::exp(-(dx * dx + dy * dy) / 4.0);
        };
        return 2.0 + bump(1.0, 9.0, 1.0, x) + bump(9.0, 1.0, 2.0, x);
    };
    ConstraintSet cs(2);
    cs.addTotalBw(10.0);
    cs.addLowerBounds(0.0);

    MultistartOptions opt;
    opt.starts = 12;
    opt.useSubgradient = false;
    SearchResult r = multistartMinimize(f, cs, {1.0, 9.0}, opt);
    EXPECT_NEAR(r.x[0], 9.0, 0.5);
    EXPECT_NEAR(r.x[1], 1.0, 0.5);
}

TEST(Multistart, DeterministicAcrossRuns)
{
    Vec a{4.0, 2.0, 1.0};
    ConstraintSet cs(3);
    cs.addTotalBw(30.0);
    cs.addLowerBounds(0.1);
    auto f = inverseSum(a);
    SearchResult r1 = multistartMinimize(f, cs, {10, 10, 10});
    SearchResult r2 = multistartMinimize(f, cs, {10, 10, 10});
    EXPECT_DOUBLE_EQ(r1.value, r2.value);
    for (int i = 0; i < 3; ++i)
        EXPECT_DOUBLE_EQ(r1.x[static_cast<std::size_t>(i)],
                         r2.x[static_cast<std::size_t>(i)]);
}

/** Property: multistart respects arbitrary extra linear constraints. */
class MultistartConstraints : public ::testing::TestWithParam<double>
{};

TEST_P(MultistartConstraints, RespectsCap)
{
    double cap = GetParam();
    Vec a{16.0, 4.0, 1.0};
    ConstraintSet cs(3);
    cs.addTotalBw(70.0);
    cs.addLowerBounds(0.1);
    cs.addUpperBound(0, cap);
    SearchResult r = multistartMinimize(inverseSum(a), cs, {23, 23, 24});
    EXPECT_TRUE(cs.feasible(r.x, 1e-4));
    EXPECT_LE(r.x[0], cap + 1e-4);
    // With the unconstrained optimum at 40, a tighter cap binds.
    if (cap < 40.0) {
        EXPECT_NEAR(r.x[0], cap, 0.5);
    }
}

INSTANTIATE_TEST_SUITE_P(Caps, MultistartConstraints,
                         ::testing::Values(10.0, 20.0, 30.0, 50.0));

} // namespace
} // namespace libra
