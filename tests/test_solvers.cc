/**
 * @file
 * Tests for the iterative searches: subgradient, pattern search,
 * Nelder-Mead, and the multistart driver.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/logging.hh"
#include "solver/cmaes.hh"
#include "solver/differential_evolution.hh"
#include "solver/multistart.hh"
#include "solver/nelder_mead.hh"
#include "solver/pattern_search.hh"
#include "solver/qp.hh"
#include "solver/strategy.hh"
#include "solver/subgradient.hh"

namespace libra {
namespace {

/** Convex separable model: sum of a_i / x_i, the LIBRA time shape. */
ScalarObjective
inverseSum(Vec weights)
{
    return [weights = std::move(weights)](const Vec& x) {
        double s = 0.0;
        for (std::size_t i = 0; i < x.size(); ++i)
            s += weights[i] / std::max(x[i], 1e-12);
        return s;
    };
}

/**
 * Analytic optimum of min sum a_i/x_i s.t. sum x_i = T:
 * x_i = T * sqrt(a_i) / sum_j sqrt(a_j).
 */
Vec
inverseSumOptimum(const Vec& a, double total)
{
    double denom = 0.0;
    for (double v : a)
        denom += std::sqrt(v);
    Vec x(a.size());
    for (std::size_t i = 0; i < a.size(); ++i)
        x[i] = total * std::sqrt(a[i]) / denom;
    return x;
}

TEST(NumericGradient, MatchesAnalytic)
{
    auto f = [](const Vec& x) { return x[0] * x[0] + 3.0 * x[1]; };
    Vec g = numericGradient(f, {2.0, 5.0});
    EXPECT_NEAR(g[0], 4.0, 1e-4);
    EXPECT_NEAR(g[1], 3.0, 1e-4);
}

TEST(Subgradient, SolvesWaterFilling)
{
    Vec a{16.0, 4.0, 1.0};
    ConstraintSet cs(3);
    cs.addTotalBw(70.0);
    cs.addLowerBounds(0.1);

    SearchResult r =
        projectedSubgradient(inverseSum(a), cs, {70.0 / 3, 70.0 / 3,
                                                 70.0 / 3});
    Vec want = inverseSumOptimum(a, 70.0); // (40, 20, 10).
    auto f = inverseSum(a);
    EXPECT_NEAR(r.value, f(want), f(want) * 0.01);
}

TEST(PatternSearch, RefinesToOptimum)
{
    Vec a{9.0, 1.0};
    ConstraintSet cs(2);
    cs.addTotalBw(40.0);
    cs.addLowerBounds(0.1);

    SearchResult r = patternSearch(inverseSum(a), cs, {20.0, 20.0});
    Vec want = inverseSumOptimum(a, 40.0); // (30, 10).
    EXPECT_NEAR(r.x[0], want[0], 0.3);
    EXPECT_NEAR(r.x[1], want[1], 0.3);
}

TEST(PatternSearch, NeverWorseThanStart)
{
    Vec a{5.0, 2.0, 1.0, 7.0};
    ConstraintSet cs(4);
    cs.addTotalBw(100.0);
    cs.addLowerBounds(0.1);
    auto f = inverseSum(a);
    Vec x0{25.0, 25.0, 25.0, 25.0};
    SearchResult r = patternSearch(f, cs, x0);
    EXPECT_LE(r.value, f(x0) + 1e-12);
    EXPECT_TRUE(cs.feasible(r.x, 1e-5));
}

TEST(NelderMead, FindsConstrainedMinimum)
{
    Vec a{16.0, 1.0};
    ConstraintSet cs(2);
    cs.addTotalBw(50.0);
    cs.addLowerBounds(0.1);
    SearchResult r = nelderMead(inverseSum(a), cs, {25.0, 25.0});
    Vec want = inverseSumOptimum(a, 50.0); // (40, 10).
    auto f = inverseSum(a);
    EXPECT_NEAR(r.value, f(want), f(want) * 0.02);
    EXPECT_TRUE(cs.feasible(r.x, 1e-5));
}

TEST(Multistart, EscapesLocalMinimaOnNonconvex)
{
    // f has a poor local basin near x0=(1,9) and a global one at ~(9,1).
    auto f = [](const Vec& x) {
        auto bump = [](double cx, double cy, double depth, const Vec& p) {
            double dx = p[0] - cx;
            double dy = p[1] - cy;
            return -depth * std::exp(-(dx * dx + dy * dy) / 4.0);
        };
        return 2.0 + bump(1.0, 9.0, 1.0, x) + bump(9.0, 1.0, 2.0, x);
    };
    ConstraintSet cs(2);
    cs.addTotalBw(10.0);
    cs.addLowerBounds(0.0);

    MultistartOptions opt;
    opt.starts = 12;
    opt.useSubgradient = false;
    SearchResult r = multistartMinimize(f, cs, {1.0, 9.0}, opt);
    EXPECT_NEAR(r.x[0], 9.0, 0.5);
    EXPECT_NEAR(r.x[1], 1.0, 0.5);
}

TEST(Multistart, DeterministicAcrossRuns)
{
    Vec a{4.0, 2.0, 1.0};
    ConstraintSet cs(3);
    cs.addTotalBw(30.0);
    cs.addLowerBounds(0.1);
    auto f = inverseSum(a);
    SearchResult r1 = multistartMinimize(f, cs, {10, 10, 10});
    SearchResult r2 = multistartMinimize(f, cs, {10, 10, 10});
    EXPECT_DOUBLE_EQ(r1.value, r2.value);
    for (int i = 0; i < 3; ++i)
        EXPECT_DOUBLE_EQ(r1.x[static_cast<std::size_t>(i)],
                         r2.x[static_cast<std::size_t>(i)]);
}

TEST(Cmaes, FindsConstrainedMinimum)
{
    Vec a{16.0, 4.0, 1.0};
    ConstraintSet cs(3);
    cs.addTotalBw(70.0);
    cs.addLowerBounds(0.1);
    CmaesOptions opt;
    opt.scale = 70.0;
    SearchResult r =
        cmaesSearch(inverseSum(a), cs, {70.0 / 3, 70.0 / 3, 70.0 / 3},
                    opt);
    Vec want = inverseSumOptimum(a, 70.0); // (40, 20, 10).
    auto f = inverseSum(a);
    EXPECT_NEAR(r.value, f(want), f(want) * 0.01);
    EXPECT_TRUE(cs.feasible(r.x, 1e-5));
}

TEST(Cmaes, IsDeterministicPerSeedAndNeverWorseThanStart)
{
    Vec a{5.0, 1.0};
    ConstraintSet cs(2);
    cs.addTotalBw(40.0);
    cs.addLowerBounds(0.1);
    auto f = inverseSum(a);
    CmaesOptions opt;
    opt.scale = 40.0;
    opt.seed = 77;
    SearchResult r1 = cmaesSearch(f, cs, {20.0, 20.0}, opt);
    SearchResult r2 = cmaesSearch(f, cs, {20.0, 20.0}, opt);
    EXPECT_EQ(r1.value, r2.value);
    EXPECT_EQ(r1.x, r2.x);
    EXPECT_LE(r1.value, f({20.0, 20.0}) + 1e-12);
}

TEST(DifferentialEvolution, FindsConstrainedMinimum)
{
    Vec a{16.0, 4.0, 1.0};
    ConstraintSet cs(3);
    cs.addTotalBw(70.0);
    cs.addLowerBounds(0.1);
    DifferentialEvolutionOptions opt;
    opt.scale = 70.0;
    SearchResult r = differentialEvolutionSearch(
        inverseSum(a), cs, {70.0 / 3, 70.0 / 3, 70.0 / 3}, opt);
    Vec want = inverseSumOptimum(a, 70.0);
    auto f = inverseSum(a);
    EXPECT_NEAR(r.value, f(want), f(want) * 0.01);
    EXPECT_TRUE(cs.feasible(r.x, 1e-5));
}

TEST(DifferentialEvolution, EscapesLocalMinimaOnNonconvex)
{
    // The Multistart bump landscape, solved by one DE run (no
    // restarts): the population must not collapse into the poor
    // basin at (1, 9).
    auto f = [](const Vec& x) {
        auto bump = [](double cx, double cy, double depth, const Vec& p) {
            double dx = p[0] - cx;
            double dy = p[1] - cy;
            return -depth * std::exp(-(dx * dx + dy * dy) / 4.0);
        };
        return 2.0 + bump(1.0, 9.0, 1.0, x) + bump(9.0, 1.0, 2.0, x);
    };
    ConstraintSet cs(2);
    cs.addTotalBw(10.0);
    cs.addLowerBounds(0.0);
    DifferentialEvolutionOptions opt;
    opt.scale = 10.0;
    SearchResult r = differentialEvolutionSearch(f, cs, {1.0, 9.0}, opt);
    EXPECT_NEAR(r.x[0], 9.0, 0.5);
    EXPECT_NEAR(r.x[1], 1.0, 0.5);
}

TEST(StrategyRegistry, BuiltinsAreRegisteredInOrder)
{
    std::vector<std::string> names = StrategyRegistry::global().names();
    std::vector<std::string> want{"subgradient", "pattern-search",
                                  "nelder-mead", "cmaes", "de"};
    EXPECT_EQ(names, want);
    for (const auto& name : names) {
        const SearchStrategy* s = StrategyRegistry::global().find(name);
        ASSERT_NE(s, nullptr);
        EXPECT_EQ(s->name(), name);
        EXPECT_FALSE(s->description().empty());
    }
    EXPECT_EQ(StrategyRegistry::global().find("no-such-strategy"),
              nullptr);
}

TEST(StrategyRegistry, SolverSpecParsesAndRejectsUnknownNames)
{
    std::vector<std::string> spec =
        parseSolverSpec("cmaes, pattern-search");
    EXPECT_EQ(spec,
              (std::vector<std::string>{"cmaes", "pattern-search"}));
    EXPECT_EQ(solverSpecToString(spec), "cmaes,pattern-search");
    EXPECT_THROW(parseSolverSpec(""), FatalError);
    EXPECT_THROW(parseSolverSpec("cmaes,"), FatalError);
    EXPECT_THROW(parseSolverSpec("gradient-descent"), FatalError);
}

TEST(StrategyPipeline, ExplicitDefaultChainMatchesImplicitBitExactly)
{
    // The refactor contract: spelling the default chain out as a
    // pipeline must reproduce the hard-wired behavior bit for bit.
    Vec a{4.0, 2.0, 1.0};
    ConstraintSet cs(3);
    cs.addTotalBw(30.0);
    cs.addLowerBounds(0.1);
    auto f = inverseSum(a);

    MultistartOptions implicit;
    SearchResult r1 = multistartMinimize(f, cs, {10, 10, 10}, implicit);

    MultistartOptions explicitChain;
    explicitChain.pipeline = {"subgradient", "pattern-search",
                              "nelder-mead"};
    SearchResult r2 =
        multistartMinimize(f, cs, {10, 10, 10}, explicitChain);
    EXPECT_EQ(r1.value, r2.value);
    EXPECT_EQ(r1.x, r2.x);

    EXPECT_EQ(multistartPipelineNames(implicit),
              explicitChain.pipeline);
    MultistartOptions noSubgradient;
    noSubgradient.useSubgradient = false;
    EXPECT_EQ(multistartPipelineNames(noSubgradient),
              (std::vector<std::string>{"pattern-search",
                                        "nelder-mead"}));
}

TEST(StrategyPipeline, UnknownStrategyInDriverIsAFatalError)
{
    Vec a{1.0, 1.0};
    ConstraintSet cs(2);
    cs.addTotalBw(10.0);
    cs.addLowerBounds(0.1);
    MultistartOptions opt;
    opt.pipeline = {"not-a-strategy"};
    EXPECT_THROW(multistartMinimize(inverseSum(a), cs, {5, 5}, opt),
                 FatalError);
}

TEST(StrategyPipeline, EvalBudgetCapsThePipeline)
{
    Vec a{9.0, 3.0, 1.0};
    ConstraintSet cs(3);
    cs.addTotalBw(60.0);
    cs.addLowerBounds(0.1);
    auto f = inverseSum(a);

    // A tiny budget must still produce a clean feasible point...
    MultistartOptions tight;
    tight.maxEvalsPerStart = 50;
    SearchResult r = multistartMinimize(f, cs, {20, 20, 20}, tight);
    EXPECT_TRUE(cs.feasible(r.x, 1e-5));

    // ...and no strategy may charge more than the budget allows —
    // iteration clamping must account for each strategy's true
    // per-iteration evaluation cost.
    for (const auto& name : StrategyRegistry::global().names()) {
        SCOPED_TRACE(name);
        const SearchStrategy* s = StrategyRegistry::global().find(name);
        ASSERT_NE(s, nullptr);
        EvalBudget budget(40);
        StartPoint start{{20.0, 20.0, 20.0}, 0xB06ull, 60.0};
        SearchResult capped = s->search(f, cs, start, budget);
        EXPECT_TRUE(cs.feasible(capped.x, 1e-5));
        EXPECT_LE(budget.used(), 40);
    }
}

/** Property: multistart respects arbitrary extra linear constraints. */
class MultistartConstraints : public ::testing::TestWithParam<double>
{};

TEST_P(MultistartConstraints, RespectsCap)
{
    double cap = GetParam();
    Vec a{16.0, 4.0, 1.0};
    ConstraintSet cs(3);
    cs.addTotalBw(70.0);
    cs.addLowerBounds(0.1);
    cs.addUpperBound(0, cap);
    SearchResult r = multistartMinimize(inverseSum(a), cs, {23, 23, 24});
    EXPECT_TRUE(cs.feasible(r.x, 1e-4));
    EXPECT_LE(r.x[0], cap + 1e-4);
    // With the unconstrained optimum at 40, a tighter cap binds.
    if (cap < 40.0) {
        EXPECT_NEAR(r.x[0], cap, 0.5);
    }
}

INSTANTIATE_TEST_SUITE_P(Caps, MultistartConstraints,
                         ::testing::Values(10.0, 20.0, 30.0, 50.0));

} // namespace
} // namespace libra
