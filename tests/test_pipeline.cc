/**
 * @file
 * Tests for the pipeline-parallelism extension: HP-(tp, pp, dp)
 * strategies, point-to-point stage transfers, and the pipeline bubble.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "core/estimator.hh"
#include "sim/training_sim.hh"
#include "topology/zoo.hh"
#include "workload/transformer.hh"
#include "workload/zoo.hh"

namespace libra {
namespace {

TEST(Pipeline, StrategyNaming)
{
    EXPECT_EQ((Parallelization{16, 256}.name()), "HP-(16, 256)");
    EXPECT_EQ((Parallelization{16, 4, 64}.name()), "HP-(16, 4, 64)");
    EXPECT_EQ((Parallelization{16, 4, 64}.npus()), 4096);
}

TEST(Pipeline, StageHostsItsShareOfLayers)
{
    Workload flat = wl::gpt3WithStrategy(16, 1, 256);
    Workload piped = wl::gpt3WithStrategy(16, 8, 32);
    EXPECT_EQ(flat.layers.size(), 96u);
    EXPECT_EQ(piped.layers.size(), 12u); // 96 / 8 per stage.
}

TEST(Pipeline, BoundaryLayerCarriesP2P)
{
    Workload piped = wl::gpt3WithStrategy(16, 8, 32);
    const Layer& last = piped.layers.back();
    bool fwdP2p = false, igP2p = false;
    for (const auto& op : last.fwdComm) {
        if (op.type == CollectiveType::PointToPoint &&
            op.scope == CommScope::Pp)
            fwdP2p = true;
    }
    for (const auto& op : last.igComm) {
        if (op.type == CollectiveType::PointToPoint)
            igP2p = true;
    }
    EXPECT_TRUE(fwdP2p);
    EXPECT_TRUE(igP2p);

    // Non-boundary layers have no P2P.
    for (const auto& op : piped.layers.front().fwdComm)
        EXPECT_NE(op.type, CollectiveType::PointToPoint);
}

TEST(Pipeline, BubbleInflatesCompute)
{
    TransformerConfig c;
    c.numLayers = 8;
    c.hidden = 2048;
    c.microbatches = 8;

    c.strategy = {1, 1, 8};
    Seconds flat = buildTransformer(c).layers[0].fwdCompute;
    c.strategy = {1, 4, 2};
    Seconds piped = buildTransformer(c).layers[0].fwdCompute;
    // bubble = 1 + 3/8 = 1.375; batch per group changes dp 8 -> 2?
    // batchPerGroup is per config (fixed here), so the only change is
    // the bubble.
    EXPECT_NEAR(piped / flat, 1.375, 1e-12);
}

TEST(Pipeline, IndivisibleStagesThrow)
{
    TransformerConfig c;
    c.numLayers = 10;
    c.strategy = {1, 4, 1};
    EXPECT_THROW(buildTransformer(c), FatalError);
}

TEST(Pipeline, P2pTrafficLoadsOnlyFirstSpanDim)
{
    std::vector<DimSpan> spans{{1, 4}, {2, 8}};
    auto traffic =
        multiRailTraffic(CollectiveType::PointToPoint, 1e9, spans);
    ASSERT_EQ(traffic.size(), 2u);
    EXPECT_DOUBLE_EQ(traffic[0], 1e9);
    EXPECT_DOUBLE_EQ(traffic[1], 0.0);
}

TEST(Pipeline, P2pTimeIsSizeOverBw)
{
    std::vector<DimSpan> spans{{0, 4}};
    BwConfig bw{25.0};
    auto t =
        multiRailTime(CollectiveType::PointToPoint, 1e9, spans, bw);
    EXPECT_NEAR(t.time, 1e9 / 25e9, 1e-15);
}

TEST(Pipeline, EstimatorResolvesPpScope)
{
    Network net = topo::fourD4K(); // RI(4)_FC(8)_RI(4)_SW(32).
    TrainingEstimator est(net);
    Parallelization hp{16, 8, 32};
    // PP-8 above TP-16: half of dim 2 (2 of 8, stride 4) then dim 3.
    auto spans = est.spansFor(hp, CommScope::Pp);
    ASSERT_EQ(spans.size(), 2u);
    EXPECT_EQ(spans[0].dim, 1u);
    EXPECT_EQ(spans[0].groupSize, 2);
    EXPECT_EQ(spans[1].dim, 2u);
    EXPECT_EQ(spans[1].groupSize, 4);
    // DP-32 sits above TP*PP = 128: the outermost dim.
    auto dpSpans = est.spansFor(hp, CommScope::Dp);
    ASSERT_EQ(dpSpans.size(), 1u);
    EXPECT_EQ(dpSpans[0].dim, 3u);
}

TEST(Pipeline, EndToEndEstimateRuns)
{
    Network net = topo::fourD4K();
    TrainingEstimator est(net);
    Workload piped = wl::gpt3WithStrategy(16, 8, 32);
    Seconds t = est.estimate(piped, net.equalBw(400.0));
    EXPECT_GT(t, 0.0);

    // Pipelining trades: fewer layers per NPU cut the ZeRO-2 gradient
    // sync volume, while the pipeline bubble inflates compute and the
    // stage boundary adds P2P traffic.
    Workload flat = wl::gpt3WithStrategy(16, 1, 256);
    auto dpBytes = [](const Workload& w) {
        Bytes total = 0.0;
        for (const auto& l : w.layers)
            for (const auto& op : l.wgComm)
                total += op.size;
        return total;
    };
    EXPECT_LT(dpBytes(piped), dpBytes(flat));
    EXPECT_GT(piped.totalCompute(), flat.totalCompute()); // Bubble.
}

TEST(Pipeline, CompiledMatchesDirectWithP2p)
{
    Network net = topo::fourD4K();
    TrainingEstimator est(net);
    Workload piped = wl::gpt3WithStrategy(16, 8, 32);
    CompiledWorkload cw = est.compile(piped);
    for (double b : {150.0, 400.0, 900.0}) {
        BwConfig bw = net.equalBw(b);
        EXPECT_NEAR(cw.estimate(bw), est.estimate(piped, bw), 1e-12);
    }
}

TEST(Pipeline, TrainingSimHandlesP2p)
{
    Network net = topo::fourD4K();
    Workload piped = wl::gpt3WithStrategy(16, 8, 32);
    TrainingSimResult r =
        TrainingSim(net).simulate(piped, net.equalBw(400.0));
    EXPECT_GT(r.total, 0.0);
    Seconds analytic =
        TrainingEstimator(net).estimate(piped, net.equalBw(400.0));
    EXPECT_NEAR(r.total, analytic, 0.10 * analytic);
}

/** Property: per-stage layer count scales inversely with pp. */
class PipelineDepth : public ::testing::TestWithParam<long>
{};

TEST_P(PipelineDepth, LayerAndTrafficScaling)
{
    long pp = GetParam();
    Workload w = wl::gpt3WithStrategy(16, pp, 256 / pp);
    EXPECT_EQ(w.layers.size(), static_cast<std::size_t>(96 / pp));
    EXPECT_EQ(w.strategy.npus(), 4096);
}

INSTANTIATE_TEST_SUITE_P(Depths, PipelineDepth,
                         ::testing::Values(1L, 2L, 4L, 8L, 16L));

} // namespace
} // namespace libra
