/**
 * @file
 * Tests for the workload text parser/serializer.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "workload/parser.hh"
#include "workload/zoo.hh"

namespace libra {
namespace {

const char* kSample = R"(
# A miniature two-layer workload.
WORKLOAD demo
PARAMS 1e9
STRATEGY TP 4 PP 1 DP 8

LAYER first
  FWD_COMPUTE 0.5
  IG_COMPUTE 0.25
  WG_COMPUTE 0.125
  FWD_COMM ALLREDUCE TP 1e8
  IG_COMM ALLREDUCE TP 1e8
  WG_COMM REDUCESCATTER DP 2e7
  WG_COMM ALLGATHER DP 2e7
END

LAYER second
  FWD_COMPUTE 0.5
  FWD_COMM ALLTOALL ALL 5e6
END
)";

TEST(WorkloadParser, ParsesSample)
{
    Workload w = parseWorkloadString(kSample);
    EXPECT_EQ(w.name, "demo");
    EXPECT_DOUBLE_EQ(w.parameters, 1e9);
    EXPECT_EQ(w.strategy.tp, 4);
    EXPECT_EQ(w.strategy.pp, 1);
    EXPECT_EQ(w.strategy.dp, 8);
    ASSERT_EQ(w.layers.size(), 2u);

    const Layer& l0 = w.layers[0];
    EXPECT_EQ(l0.name, "first");
    EXPECT_DOUBLE_EQ(l0.fwdCompute, 0.5);
    EXPECT_DOUBLE_EQ(l0.igCompute, 0.25);
    EXPECT_DOUBLE_EQ(l0.wgCompute, 0.125);
    ASSERT_EQ(l0.fwdComm.size(), 1u);
    EXPECT_EQ(l0.fwdComm[0].type, CollectiveType::AllReduce);
    EXPECT_EQ(l0.fwdComm[0].scope, CommScope::Tp);
    ASSERT_EQ(l0.wgComm.size(), 2u);
    EXPECT_EQ(l0.wgComm[1].type, CollectiveType::AllGather);

    const Layer& l1 = w.layers[1];
    ASSERT_EQ(l1.fwdComm.size(), 1u);
    EXPECT_EQ(l1.fwdComm[0].type, CollectiveType::AllToAll);
    EXPECT_EQ(l1.fwdComm[0].scope, CommScope::All);
}

TEST(WorkloadParser, RoundTripsBuiltWorkloads)
{
    for (const auto& w :
         {wl::gpt3(1024), wl::dlrm(512), wl::resnet50(256),
          wl::gpt3WithStrategy(16, 8, 32)}) {
        Workload back = parseWorkloadString(serializeWorkload(w));
        EXPECT_EQ(back.name, w.name);
        EXPECT_DOUBLE_EQ(back.parameters, w.parameters);
        EXPECT_EQ(back.strategy.tp, w.strategy.tp);
        EXPECT_EQ(back.strategy.pp, w.strategy.pp);
        EXPECT_EQ(back.strategy.dp, w.strategy.dp);
        ASSERT_EQ(back.layers.size(), w.layers.size());
        for (std::size_t i = 0; i < w.layers.size(); ++i) {
            EXPECT_EQ(back.layers[i].name, w.layers[i].name);
            EXPECT_DOUBLE_EQ(back.layers[i].fwdCompute,
                             w.layers[i].fwdCompute);
            auto a = Workload::allOps(back.layers[i]);
            auto b = Workload::allOps(w.layers[i]);
            ASSERT_EQ(a.size(), b.size());
            for (std::size_t k = 0; k < a.size(); ++k) {
                EXPECT_EQ(a[k].type, b[k].type);
                EXPECT_EQ(a[k].scope, b[k].scope);
                EXPECT_DOUBLE_EQ(a[k].size, b[k].size);
            }
        }
    }
}

TEST(WorkloadParser, P2pToken)
{
    Workload w = parseWorkloadString(R"(
WORKLOAD pp-demo
STRATEGY TP 2 PP 4 DP 1
LAYER boundary
  FWD_COMM P2P PP 1e6
END
)");
    EXPECT_EQ(w.layers[0].fwdComm[0].type,
              CollectiveType::PointToPoint);
    EXPECT_EQ(w.layers[0].fwdComm[0].scope, CommScope::Pp);
}

TEST(WorkloadParser, ErrorsCarryLineNumbers)
{
    auto expectError = [](const char* text, const char* needle) {
        try {
            parseWorkloadString(text);
            FAIL() << "expected FatalError for: " << text;
        } catch (const FatalError& e) {
            EXPECT_NE(std::string(e.what()).find(needle),
                      std::string::npos)
                << e.what();
        }
    };
    expectError("WORKLOAD x\nLAYER a\nEND\nEND\n", "END without LAYER");
    expectError("WORKLOAD x\nLAYER a\nLAYER b\n", "LAYER inside LAYER");
    expectError("WORKLOAD x\nLAYER a\nFWD_COMM NOPE TP 1\nEND\n",
                "unknown collective");
    expectError("WORKLOAD x\nLAYER a\nFWD_COMM ALLREDUCE XX 1\nEND\n",
                "unknown scope");
    expectError("WORKLOAD x\nLAYER a\nFWD_COMPUTE abc\nEND\n",
                "bad compute time");
    expectError("LAYER a\nEND\n", "no WORKLOAD header");
    expectError("WORKLOAD x\n", "no layers");
    expectError("WORKLOAD x\nLAYER a\n", "ended inside LAYER");
    expectError("WORKLOAD x\nBOGUS 1\n", "unknown keyword");
    expectError("WORKLOAD x\nLAYER a\nFWD_COMPUTE 1 \nSTRATEGY QQ 1\n"
                "END\n",
                "unknown strategy key");
}

TEST(WorkloadParser, CommentsAndWhitespaceIgnored)
{
    Workload w = parseWorkloadString(
        "WORKLOAD c # trailing comment\n\n   \n"
        "LAYER only # another\n  FWD_COMPUTE 1.0\nEND\n");
    EXPECT_EQ(w.name, "c");
    EXPECT_EQ(w.layers.size(), 1u);
}

} // namespace
} // namespace libra
