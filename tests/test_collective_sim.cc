/**
 * @file
 * Tests for the data-carrying collective simulator (Fig. 8 semantics).
 */

#include <gtest/gtest.h>

#include "collective/multi_rail.hh"
#include "common/logging.hh"
#include "sim/collective_sim.hh"
#include "topology/zoo.hh"

namespace libra {
namespace {

double
idPlusIndex(long npu, std::size_t idx)
{
    return static_cast<double>(npu + 1) * 10.0 +
           static_cast<double>(idx);
}

TEST(CollectiveSim, Figure8ThreeByTwoAllReduce)
{
    // The paper's 3x2 worked example: 6 NPUs, 6 values each.
    Network net = Network::parse("RI(3)_RI(2)");
    CollectiveSim sim(net, {10.0, 10.0});
    sim.init(6, idPlusIndex);

    Seconds rs = sim.runReduceScatter();
    EXPECT_TRUE(sim.verifyReduceScatter());
    // After RS over both dims each NPU owns 6/(3*2) = 1 element.
    for (long id = 0; id < 6; ++id) {
        auto [lo, hi] = sim.activeRange(id);
        EXPECT_EQ(hi - lo, 1u);
    }

    Seconds ag = sim.runAllGather();
    EXPECT_TRUE(sim.verifyAllReduce());
    EXPECT_GT(rs, 0.0);
    EXPECT_NEAR(ag, rs, 1e-12); // AG mirrors RS volumes.
}

TEST(CollectiveSim, Figure8NumericValues)
{
    // Reproduce the exact arithmetic of Fig. 8: NPU i holds the column
    // of values shown in the figure; the final result is the same sum
    // everywhere.
    Network net = Network::parse("RI(3)_RI(2)");
    // Values from Fig. 8(a), NPUs 1..6, 6 chunks each.
    const double vals[6][6] = {
        {1, 2, 3, -6, -4, -2},  {4, 5, 6, -5, -3, -1},
        {1, 3, 5, -2, -3, -5},  {2, 4, 6, -1, -4, -6},
        {6, 3, 2, 4, 2, 6},     {5, 4, 1, 1, 5, 3},
    };
    CollectiveSim sim(net, {1.0, 1.0});
    sim.init(6, [&vals](long npu, std::size_t i) {
        return vals[npu][i];
    });
    sim.runAllReduce();
    EXPECT_TRUE(sim.verifyAllReduce());
    // Fig. 8(f): the reduced vector is the same on every NPU.
    for (long id = 0; id < 6; ++id) {
        const auto& d = sim.data(id);
        double expect0 = 1 + 4 + 1 + 2 + 6 + 5; // 19.
        EXPECT_NEAR(d[0], expect0, 1e-12);
    }
}

TEST(CollectiveSim, AllReduceCorrectAcrossTopologies)
{
    for (const char* shape :
         {"RI(4)", "FC(4)", "SW(4)", "RI(2)_SW(2)", "RI(4)_FC(2)_SW(2)",
          "RI(4)_RI(4)_RI(4)"}) {
        Network net = Network::parse(shape);
        CollectiveSim sim(net, net.equalBw(100.0));
        sim.init(static_cast<std::size_t>(net.npus()) * 4, idPlusIndex);
        sim.runAllReduce();
        EXPECT_TRUE(sim.verifyAllReduce()) << shape;
    }
}

TEST(CollectiveSim, TimingMatchesAnalyticalModel)
{
    // Sequential (non-pipelined) stage times must equal the analytic
    // per-dim times at zero latency.
    Network net = Network::parse("RI(4)_FC(2)_SW(2)");
    BwConfig bw{30.0, 20.0, 10.0};
    CollectiveSim sim(net, bw, 0.0, kFp32Bytes);
    std::size_t elems = static_cast<std::size_t>(net.npus()) * 16;
    sim.init(elems, idPlusIndex);
    Seconds t = sim.runAllReduce();

    Bytes m = static_cast<double>(elems) * kFp32Bytes;
    auto spans = mapGroupToDims(net, 1, net.npus());
    auto timing = multiRailTime(CollectiveType::AllReduce, m, spans, bw);
    Seconds analyticSum = 0.0;
    for (Seconds s : timing.timePerDim)
        analyticSum += s;
    EXPECT_NEAR(t, analyticSum, analyticSum * 1e-9);
}

TEST(CollectiveSim, LatencyAddsPerStep)
{
    Network ringNet = Network::parse("RI(8)");
    CollectiveSim noLat(ringNet, {100.0}, 0.0);
    CollectiveSim withLat(ringNet, {100.0}, 1e-6);
    noLat.init(8, idPlusIndex);
    withLat.init(8, idPlusIndex);
    Seconds t0 = noLat.runAllReduce();
    Seconds t1 = withLat.runAllReduce();
    // Ring RS is 7 steps and ring AG is 7 steps: 14 us extra.
    EXPECT_NEAR(t1 - t0, 14e-6, 1e-12);
}

TEST(CollectiveSim, AlgorithmStepCounts)
{
    // Ring: g-1 steps; Direct: 1; Halving-Doubling: log2 g.
    Network net = Network::parse("RI(4)_FC(4)_SW(4)");
    CollectiveSim sim(net, net.equalBw(30.0), 1e-6);
    sim.init(static_cast<std::size_t>(net.npus()), idPlusIndex);
    sim.runReduceScatter();
    const auto& stages = sim.stages();
    ASSERT_EQ(stages.size(), 3u);
    EXPECT_EQ(stages[0].steps, 3); // Ring(4).
    EXPECT_EQ(stages[1].steps, 1); // FC(4) direct.
    EXPECT_EQ(stages[2].steps, 2); // SW(4) halving-doubling.
}

TEST(CollectiveSim, ReduceScatterOwnershipTilesBuffer)
{
    Network net = topo::threeDTorus();
    CollectiveSim sim(net, net.equalBw(300.0));
    std::size_t elems = static_cast<std::size_t>(net.npus());
    sim.init(elems, idPlusIndex);
    sim.runReduceScatter();
    EXPECT_TRUE(sim.verifyReduceScatter());

    // Each NPU owns exactly one element; all elements covered once.
    std::vector<int> covered(elems, 0);
    for (long id = 0; id < net.npus(); ++id) {
        auto [lo, hi] = sim.activeRange(id);
        EXPECT_EQ(hi - lo, 1u);
        ++covered[lo];
    }
    for (int c : covered)
        EXPECT_EQ(c, 1);
}

TEST(CollectiveSim, AllGatherWithoutReduceScatterThrows)
{
    // AG assumes the post-RS sibling-interval structure; running it on
    // a fresh buffer must fail loudly instead of corrupting ranges.
    Network net = Network::parse("RI(4)");
    CollectiveSim sim(net, {10.0});
    sim.init(8, idPlusIndex);
    EXPECT_THROW(sim.runAllGather(), FatalError);
}

TEST(CollectiveSim, InitValidation)
{
    Network net = Network::parse("RI(4)");
    CollectiveSim sim(net, {10.0});
    EXPECT_THROW(sim.init(6, idPlusIndex), FatalError); // Not mult of 4.
    EXPECT_THROW(sim.init(0, idPlusIndex), FatalError);
    EXPECT_THROW(sim.runAllReduce(), FatalError); // Init not called.
}

TEST(CollectiveSim, BandwidthScalesStageTime)
{
    Network net = Network::parse("RI(4)");
    CollectiveSim slow(net, {10.0});
    CollectiveSim fast(net, {20.0});
    slow.init(8, idPlusIndex);
    fast.init(8, idPlusIndex);
    EXPECT_NEAR(slow.runAllReduce(), 2.0 * fast.runAllReduce(), 1e-15);
}

/** Property: All-Reduce result is NPU-count * average on all shapes. */
class CollectiveSimShapes : public ::testing::TestWithParam<const char*>
{};

TEST_P(CollectiveSimShapes, ConstantInputStaysConstantTimesN)
{
    Network net = Network::parse(GetParam());
    CollectiveSim sim(net, net.equalBw(100.0));
    sim.init(static_cast<std::size_t>(net.npus()) * 2,
             [](long, std::size_t) { return 2.5; });
    sim.runAllReduce();
    double want = 2.5 * static_cast<double>(net.npus());
    for (long id = 0; id < net.npus(); ++id)
        EXPECT_NEAR(sim.data(id)[0], want, 1e-9) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Shapes, CollectiveSimShapes,
                         ::testing::Values("RI(2)", "RI(5)", "FC(3)",
                                           "SW(8)", "RI(2)_FC(2)",
                                           "SW(4)_SW(2)_SW(2)",
                                           "RI(4)_RI(4)_RI(4)"));

} // namespace
} // namespace libra
