/**
 * @file
 * Tests for the design-study configuration parser.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "core/study_config.hh"

namespace libra {
namespace {

TEST(StudyConfig, ParsesFullStudy)
{
    LibraInputs in = parseStudyConfigString(R"(
# full study
NETWORK RI(16)_FC(8)_SW(32)
TOTAL_BW 400
OBJECTIVE PERF_PER_COST
LOOP TP_DP_OVERLAP
CONSTRAINT B3 <= 50
CONSTRAINT B1 >= B2
WORKLOAD gpt3
WORKLOAD msft1t WEIGHT 2.5
NORMALIZE_WEIGHTS
IN_NETWORK
STARTS 5
SEED 7
)");
    EXPECT_EQ(in.networkShape, "RI(16)_FC(8)_SW(32)");
    EXPECT_DOUBLE_EQ(in.config.totalBw, 400.0);
    EXPECT_EQ(in.config.objective,
              OptimizationObjective::PerfPerCostOpt);
    EXPECT_EQ(in.config.estimator.loop, TrainingLoop::TpDpOverlap);
    EXPECT_TRUE(in.config.estimator.inNetworkCollectives);
    EXPECT_EQ(in.config.constraints.size(), 2u);
    ASSERT_EQ(in.targets.size(), 2u);
    EXPECT_EQ(in.targets[0].workload.name, "GPT-3");
    EXPECT_EQ(in.targets[0].workload.strategy.npus(), 4096);
    EXPECT_DOUBLE_EQ(in.targets[1].weight, 2.5);
    EXPECT_TRUE(in.normalizeTargetWeights);
    EXPECT_EQ(in.config.search.starts, 5);
    EXPECT_EQ(in.config.search.seed, 7u);
}

TEST(StudyConfig, ZooNamesSizedToNetwork)
{
    LibraInputs in = parseStudyConfigString(
        "NETWORK SW(16)_SW(8)_SW(4)\nWORKLOAD resnet50\n");
    EXPECT_EQ(in.targets[0].workload.strategy.npus(), 512);
}

TEST(StudyConfig, CostOverride)
{
    LibraInputs in = parseStudyConfigString(
        "NETWORK RI(4)_SW(2)\nWORKLOAD resnet50\n"
        "COST Pod LINK 9.9 NIC 40.0\n");
    ComponentCost c = in.costModel.levelCost(PhysicalLevel::Pod);
    EXPECT_DOUBLE_EQ(c.link, 9.9);
    EXPECT_DOUBLE_EQ(c.nic, 40.0);
    // Unmentioned components keep the defaults.
    EXPECT_DOUBLE_EQ(c.switch_, 18.0);
}

TEST(StudyConfig, DollarCapRelaxesBudget)
{
    LibraInputs in = parseStudyConfigString(
        "NETWORK RI(4)_SW(2)\nWORKLOAD resnet50\nDOLLAR_CAP 1e6\n");
    EXPECT_DOUBLE_EQ(in.config.budgetCap, 1e6);
    EXPECT_TRUE(in.config.relaxTotalBw);
}

TEST(StudyConfig, ZooNameResolution)
{
    EXPECT_EQ(zooWorkloadByName("Turing-NLG", 1024).name, "Turing-NLG");
    EXPECT_EQ(zooWorkloadByName("GPT-3", 1024).name, "GPT-3");
    EXPECT_EQ(zooWorkloadByName("msft-1t", 4096).name, "MSFT-1T");
    EXPECT_THROW(zooWorkloadByName("nope", 64), FatalError);
}

TEST(StudyConfig, Errors)
{
    auto expectError = [](const char* text, const char* needle) {
        try {
            parseStudyConfigString(text);
            FAIL() << "expected FatalError for: " << text;
        } catch (const FatalError& e) {
            EXPECT_NE(std::string(e.what()).find(needle),
                      std::string::npos)
                << e.what();
        }
    };
    expectError("WORKLOAD gpt3\n", "no NETWORK");
    expectError("NETWORK RI(4)\n", "no WORKLOAD");
    expectError("NETWORK RI(4)\nWORKLOAD bogus\n", "unknown zoo");
    expectError("NETWORK RI(4)\nOBJECTIVE FASTEST\nWORKLOAD dlrm\n",
                "unknown objective");
    expectError("NETWORK RI(4)\nLOOP YOLO\nWORKLOAD dlrm\n",
                "unknown loop");
    expectError("NETWORK RI(4)\nCONSTRAINT\nWORKLOAD dlrm\n",
                "empty constraint");
    expectError("NETWORK RI(4)\nBOGUS 1\nWORKLOAD dlrm\n",
                "unknown keyword");
    expectError("NETWORK RI(4)\nWORKLOAD dlrm WAIT 2\n",
                "expected WEIGHT");
    expectError("NETWORK RI(4)\nWORKLOAD_FILE /no/such/file.wl\n",
                "cannot open");
    expectError("NETWORK RI(4)\nCOST Podd LINK 1\nWORKLOAD dlrm\n",
                "unknown physical level");
}

TEST(StudyConfig, EndToEndThroughFramework)
{
    LibraInputs in = parseStudyConfigString(R"(
NETWORK FC(8)_RI(8)_SW(8)
TOTAL_BW 300
OBJECTIVE PERF
WORKLOAD gpt3
STARTS 2
)");
    LibraReport r = runLibra(in);
    EXPECT_GE(r.speedup, 1.0 - 1e-6);
}

} // namespace
} // namespace libra
