/**
 * @file
 * Tests for the network dollar-cost model (Table I / Fig. 12).
 */

#include <gtest/gtest.h>

#include "cost/cost_model.hh"
#include "topology/zoo.hh"

namespace libra {
namespace {

TEST(CostModel, Figure12WorkedExample)
{
    // 3 NPUs on an inter-Pod switch at 10 GB/s:
    // links 7.8*10*3 = 234, switch 18*3*10 = 540, NICs 31.6*10*3 = 948,
    // total $1,722.
    Network net = Network::parse("SW(3)");
    CostModel m = CostModel::defaultModel();
    Dollars cost = m.networkCost(net, {10.0});
    EXPECT_NEAR(cost, 1722.0, 1e-6);

    auto breakdown = m.breakdown(net, {10.0});
    ASSERT_EQ(breakdown.size(), 1u);
    EXPECT_NEAR(breakdown[0].linkCost, 234.0, 1e-6);
    EXPECT_NEAR(breakdown[0].switchCost, 540.0, 1e-6);
    EXPECT_NEAR(breakdown[0].nicCost, 948.0, 1e-6);
    EXPECT_NEAR(breakdown[0].total(), 1722.0, 1e-6);
}

TEST(CostModel, DefaultTableOneRates)
{
    CostModel m = CostModel::defaultModel();
    EXPECT_DOUBLE_EQ(m.levelCost(PhysicalLevel::Chiplet).link, 2.0);
    EXPECT_DOUBLE_EQ(m.levelCost(PhysicalLevel::Package).link, 4.0);
    EXPECT_DOUBLE_EQ(m.levelCost(PhysicalLevel::Package).switch_, 13.0);
    EXPECT_DOUBLE_EQ(m.levelCost(PhysicalLevel::Pod).nic, 31.6);
}

TEST(CostModel, NicOnlyAtPodLevel)
{
    CostModel m = CostModel::defaultModel();
    Network net = Network::parse("SW(4)_SW(4)");
    // Dim 1 is Node level: link+switch; dim 2 is Pod: link+switch+NIC.
    EXPECT_DOUBLE_EQ(m.dollarPerGBps(net.dim(0)), 4.0 + 13.0);
    EXPECT_DOUBLE_EQ(m.dollarPerGBps(net.dim(1)), 7.8 + 18.0 + 31.6);
}

TEST(CostModel, ChipletNeverPaysSwitch)
{
    CostModel m = CostModel::defaultModel();
    // A 4D network whose innermost dim is SW notation: chiplets are
    // peer-to-peer by definition (paper §IV-D), so no switch dollars.
    Network net = Network::parse("SW(2)_RI(2)_RI(2)_SW(2)");
    EXPECT_DOUBLE_EQ(m.dollarPerGBps(net.dim(0)), 2.0);
}

TEST(CostModel, RingPaysNoSwitchAnywhere)
{
    CostModel m = CostModel::defaultModel();
    Network net = Network::parse("RI(4)_RI(4)_RI(4)");
    EXPECT_DOUBLE_EQ(m.dollarPerGBps(net.dim(0)), 4.0);  // Package link.
    EXPECT_DOUBLE_EQ(m.dollarPerGBps(net.dim(1)), 4.0);  // Node link.
    EXPECT_DOUBLE_EQ(m.dollarPerGBps(net.dim(2)), 7.8 + 31.6); // Pod.
}

TEST(CostModel, CostScalesLinearlyWithBw)
{
    CostModel m = CostModel::defaultModel();
    Network net = topo::fourD4K();
    BwConfig bw = net.equalBw(400.0);
    Dollars c1 = m.networkCost(net, bw);
    BwConfig bw2 = net.equalBw(800.0);
    Dollars c2 = m.networkCost(net, bw2);
    EXPECT_NEAR(c2, 2.0 * c1, 1e-6);
    EXPECT_GT(c1, 0.0);
}

TEST(CostModel, CheaperToPutBwOnInnerDims)
{
    CostModel m = CostModel::defaultModel();
    Network net = topo::fourD4K();
    BwConfig inner{700.0, 100.0, 100.0, 100.0};
    BwConfig outer{100.0, 100.0, 100.0, 700.0};
    EXPECT_LT(m.networkCost(net, inner), m.networkCost(net, outer));
}

TEST(CostModel, UserOverride)
{
    CostModel m = CostModel::defaultModel();
    m.setLevelCost(PhysicalLevel::Package, {1.0, 0.0, 0.0});
    Network net = Network::parse("RI(2)_RI(2)_RI(2)");
    EXPECT_DOUBLE_EQ(m.dollarPerGBps(net.dim(0)), 1.0);
}

TEST(CostModel, BreakdownSumsToTotal)
{
    CostModel m = CostModel::defaultModel();
    Network net = topo::fourD2K();
    BwConfig bw{100.0, 50.0, 25.0, 10.0};
    Dollars total = m.networkCost(net, bw);
    Dollars sum = 0.0;
    for (const auto& b : m.breakdown(net, bw))
        sum += b.total();
    EXPECT_NEAR(sum, total, total * 1e-12);
}

TEST(CostModel, SwitchHierarchyMultipliesSwitchDollars)
{
    // Fig. 4: the two topologies use the same three physical switches,
    // but SW(4:2) is one dimension with a 2-level hierarchy. Same
    // performance model, extra switch-port dollars.
    CostModel m = CostModel::defaultModel();
    Network flat = Network::parse("SW(4)");
    Network deep = Network::parse("SW(4:2)");
    auto flatBd = m.breakdown(flat, {10.0});
    auto deepBd = m.breakdown(deep, {10.0});
    EXPECT_NEAR(deepBd[0].switchCost, 2.0 * flatBd[0].switchCost, 1e-9);
    EXPECT_NEAR(deepBd[0].linkCost, flatBd[0].linkCost, 1e-9);
    EXPECT_NEAR(deepBd[0].nicCost, flatBd[0].nicCost, 1e-9);
    EXPECT_GT(m.networkCost(deep, {10.0}), m.networkCost(flat, {10.0}));
}

TEST(CostModel, EmptyModelIsFree)
{
    CostModel m;
    Network net = topo::threeDTorus();
    EXPECT_DOUBLE_EQ(m.networkCost(net, net.equalBw(300.0)), 0.0);
}

} // namespace
} // namespace libra
