/**
 * @file
 * Tests for the linear constraint set and its text parser.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "solver/constraint_set.hh"

namespace libra {
namespace {

TEST(ConstraintSet, TotalBwAndBounds)
{
    ConstraintSet cs(3);
    cs.addTotalBw(300.0);
    cs.addLowerBounds(1.0);
    EXPECT_EQ(cs.constraints().size(), 4u);

    EXPECT_TRUE(cs.feasible({100.0, 100.0, 100.0}));
    EXPECT_FALSE(cs.feasible({100.0, 100.0, 50.0}));  // Sum != 300.
    EXPECT_FALSE(cs.feasible({299.0, 0.5, 0.5}));     // Below floor.
}

TEST(ConstraintSet, ViolationMagnitude)
{
    ConstraintSet cs(2);
    cs.addTotalBw(10.0);
    EXPECT_NEAR(cs.maxViolation({6.0, 6.0}), 2.0, 1e-12);
    EXPECT_NEAR(cs.maxViolation({4.0, 6.0}), 0.0, 1e-12);
}

TEST(ConstraintSet, UpperBound)
{
    ConstraintSet cs(4);
    cs.addUpperBound(3, 50.0);
    EXPECT_TRUE(cs.feasible({0, 0, 0, 50.0}));
    EXPECT_FALSE(cs.feasible({0, 0, 0, 50.1}));
    EXPECT_THROW(cs.addUpperBound(7, 1.0), FatalError);
}

TEST(ConstraintParser, SimpleLe)
{
    ConstraintSet cs(4);
    cs.addParsed("B1 + B2 <= 500");
    EXPECT_TRUE(cs.feasible({250, 250, 999, 999}));
    EXPECT_FALSE(cs.feasible({251, 250, 0, 0}));
}

TEST(ConstraintParser, EqualityAcrossSides)
{
    // Paper example: B2 + B3 = B4.
    ConstraintSet cs(4);
    cs.addParsed("B2 + B3 = B4");
    EXPECT_TRUE(cs.feasible({7, 10, 20, 30}));
    EXPECT_FALSE(cs.feasible({7, 10, 20, 31}));
}

TEST(ConstraintParser, Coefficients)
{
    ConstraintSet cs(2);
    cs.addParsed("2*B1 + 3 B2 <= 12");
    EXPECT_TRUE(cs.feasible({3, 2}));
    EXPECT_FALSE(cs.feasible({3.1, 2}));
}

TEST(ConstraintParser, ChainedOrdering)
{
    // Paper example: B1 >= B2 >= B3 expands to two constraints.
    ConstraintSet cs(3);
    cs.addParsed("B1 >= B2 >= B3");
    EXPECT_EQ(cs.constraints().size(), 2u);
    EXPECT_TRUE(cs.feasible({3, 2, 1}));
    EXPECT_FALSE(cs.feasible({3, 2, 2.5}));
    EXPECT_FALSE(cs.feasible({1, 2, 0}));
}

TEST(ConstraintParser, ChainedRangeWithConstants)
{
    // Paper example: 25 <= B3 <= 150.
    ConstraintSet cs(3);
    cs.addParsed("25 <= B3 <= 150");
    EXPECT_TRUE(cs.feasible({0, 0, 100}));
    EXPECT_FALSE(cs.feasible({0, 0, 20}));
    EXPECT_FALSE(cs.feasible({0, 0, 200}));
}

TEST(ConstraintParser, NegativeAndConstantTerms)
{
    ConstraintSet cs(2);
    cs.addParsed("B1 - B2 + 5 = 10");
    EXPECT_TRUE(cs.feasible({8, 3}));
    EXPECT_FALSE(cs.feasible({8, 4}));
}

TEST(ConstraintParser, DoubleEqualsAccepted)
{
    ConstraintSet cs(1);
    cs.addParsed("B1 == 42");
    EXPECT_TRUE(cs.feasible({42}));
}

TEST(ConstraintParser, Errors)
{
    ConstraintSet cs(2);
    EXPECT_THROW(cs.addParsed("B1 + B2"), FatalError);     // No relation.
    EXPECT_THROW(cs.addParsed("B9 <= 5"), FatalError);     // Bad index.
    EXPECT_THROW(cs.addParsed("B <= 5"), FatalError);      // No index.
    EXPECT_THROW(cs.addParsed("B1 <= + "), FatalError);    // Bad term.
    EXPECT_THROW(cs.addParsed("B1 ~ 5"), FatalError);      // Bad relation.
}

TEST(ConstraintSet, CanonicalSplit)
{
    ConstraintSet cs(2);
    cs.addParsed("B1 + B2 = 10");
    cs.addParsed("B1 <= 7");
    cs.addParsed("B2 >= 2");

    Matrix aEq, gLe;
    Vec bEq, hLe;
    cs.canonical(&aEq, &bEq, &gLe, &hLe);

    ASSERT_EQ(aEq.rows(), 1u);
    EXPECT_DOUBLE_EQ(aEq.at(0, 0), 1.0);
    EXPECT_DOUBLE_EQ(bEq[0], 10.0);

    ASSERT_EQ(gLe.rows(), 2u);
    // Ge rows are negated into Le form.
    EXPECT_DOUBLE_EQ(gLe.at(1, 1), -1.0);
    EXPECT_DOUBLE_EQ(hLe[1], -2.0);
}

TEST(ConstraintSet, LabelsPreserved)
{
    ConstraintSet cs(2);
    cs.addParsed("B1 <= 5");
    EXPECT_EQ(cs.constraints()[0].label, "B1 <= 5");
}

} // namespace
} // namespace libra
