/**
 * @file
 * Tests for the discrete-event engine.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.hh"

namespace libra {
namespace {

TEST(Ticks, Conversions)
{
    EXPECT_EQ(toTicks(1.0), static_cast<Tick>(1e12));
    EXPECT_EQ(toTicks(0.5e-12), 1u); // Rounds.
    EXPECT_DOUBLE_EQ(toSeconds(2'000'000'000'000ull), 2.0);
}

TEST(EventQueue, RunsInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(toTicks(3.0), [&] { order.push_back(3); });
    eq.schedule(toTicks(1.0), [&] { order.push_back(1); });
    eq.schedule(toTicks(2.0), [&] { order.push_back(2); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.now(), toTicks(3.0));
}

TEST(EventQueue, FifoOnTies)
{
    EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 5; ++i)
        eq.schedule(100, [&order, i] { order.push_back(i); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, NestedScheduling)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(10, [&] {
        order.push_back(1);
        eq.scheduleAfter(5, [&] { order.push_back(2); });
    });
    eq.schedule(12, [&] { order.push_back(3); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 3, 2}));
}

TEST(EventQueue, StepByStep)
{
    EventQueue eq;
    int count = 0;
    eq.schedule(1, [&] { ++count; });
    eq.schedule(2, [&] { ++count; });
    EXPECT_TRUE(eq.step());
    EXPECT_EQ(count, 1);
    EXPECT_TRUE(eq.step());
    EXPECT_FALSE(eq.step());
    EXPECT_TRUE(eq.empty());
}

TEST(EventQueue, ScheduleAtNowAllowed)
{
    EventQueue eq;
    int hits = 0;
    eq.schedule(7, [&] {
        eq.schedule(eq.now(), [&] { ++hits; });
    });
    eq.run();
    EXPECT_EQ(hits, 1);
}

TEST(EventQueueDeathTest, PastSchedulingPanics)
{
    EventQueue eq;
    eq.schedule(10, [] {});
    eq.run();
    EXPECT_DEATH(eq.schedule(5, [] {}), "panic");
}

} // namespace
} // namespace libra
