/**
 * @file
 * Fault-tolerance tests: the deterministic fault injector, the
 * self-healing ResultCache under adversarial on-disk entries
 * (truncated, bit-flipped, checksum-mismatched, version-skewed,
 * hash-colliding, legacy), stale tmp reaping, and per-point failure
 * isolation through runLibraSweepIsolated and the scenario matrix.
 * See docs/ROBUSTNESS.md.
 */

#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#include "common/fault.hh"
#include "common/logging.hh"
#include "core/study_config.hh"
#include "study/cache.hh"
#include "study/matrix.hh"

namespace libra {
namespace {

/** Disarms the injector on scope exit so tests cannot leak faults. */
struct FaultGuard
{
    FaultGuard() { clearFaults(); }
    ~FaultGuard() { clearFaults(); }
};

LibraInputs
miniInputs(const char* extra = "")
{
    std::string text = "NETWORK SW(4)_RI(4)\nTOTAL_BW 200\n"
                       "STARTS 2\nWORKLOAD resnet50\n";
    text += extra;
    return parseStudyConfigString(text);
}

/**
 * A design point whose evaluation throws FatalError: the resnet50
 * targets were sliced for the 16-NPU parse-time network, and swapping
 * the shape afterwards makes the estimator reject the mismatch.
 */
LibraInputs
poisonedInputs(const char* shape = "SW(4)_RI(8)")
{
    LibraInputs p = miniInputs();
    p.networkShape = shape;
    return p;
}

std::string
readFile(const std::string& path)
{
    std::ifstream in(path);
    std::ostringstream text;
    text << in.rdbuf();
    return text.str();
}

std::string
freshDir(const char* name)
{
    std::string dir = testing::TempDir() + name;
    std::filesystem::remove_all(dir);
    return dir;
}

// --- Fault-spec parsing ------------------------------------------------

TEST(FaultSpec, ParsesSitesAndSeed)
{
    FaultConfig c = parseFaultSpec("cache-load-read=0.25,seed=7");
    EXPECT_EQ(c.rate[static_cast<int>(FaultSite::CacheLoadRead)], 0.25);
    EXPECT_EQ(c.rate[static_cast<int>(FaultSite::CacheStoreWrite)],
              0.0);
    EXPECT_EQ(c.seed, 7u);
    EXPECT_TRUE(c.any());
    EXPECT_EQ(faultSpecToString(c), "cache-load-read=0.25,seed=7");

    FaultConfig multi = parseFaultSpec(
        "point-eval=1,cache-store-rename=0.5");
    EXPECT_EQ(multi.rate[static_cast<int>(FaultSite::PointEval)], 1.0);
    EXPECT_EQ(
        multi.rate[static_cast<int>(FaultSite::CacheStoreRename)], 0.5);
    EXPECT_EQ(multi.seed, 1u); // Default seed.

    EXPECT_FALSE(FaultConfig{}.any());
}

TEST(FaultSpec, RejectsMalformedSpecs)
{
    EXPECT_THROW(parseFaultSpec(""), FatalError);
    EXPECT_THROW(parseFaultSpec("no-such-site=0.5"), FatalError);
    EXPECT_THROW(parseFaultSpec("point-eval"), FatalError);
    EXPECT_THROW(parseFaultSpec("point-eval=maybe"), FatalError);
    EXPECT_THROW(parseFaultSpec("point-eval=1.5"), FatalError);
    EXPECT_THROW(parseFaultSpec("point-eval=-0.1"), FatalError);
    EXPECT_THROW(parseFaultSpec("point-eval=0.5,point-eval=0.5"),
                 FatalError);
    EXPECT_THROW(parseFaultSpec("seed=1,seed=2"), FatalError);
    EXPECT_THROW(parseFaultSpec("seed=abc"), FatalError);
}

// --- Injector determinism ----------------------------------------------

TEST(FaultInjector, DisarmedIsInert)
{
    FaultGuard guard;
    EXPECT_FALSE(faultsArmed());
    for (std::uint64_t k = 0; k < 100; ++k)
        EXPECT_FALSE(injectFault(FaultSite::PointEval, k));
    FaultStats stats = faultStats();
    EXPECT_EQ(stats.injected[static_cast<int>(FaultSite::PointEval)],
              0u);
}

TEST(FaultInjector, KeyedDrawIsAPureFunctionOfSeedSiteAndKey)
{
    FaultGuard guard;
    installFaults(parseFaultSpec("point-eval=0.5,seed=42"));
    EXPECT_TRUE(faultsArmed());

    // Same (seed, site, key) -> same answer, every time: fault
    // assignment cannot depend on thread schedule or call order.
    std::size_t fired = 0;
    for (std::uint64_t k = 0; k < 1000; ++k) {
        bool first = injectFault(FaultSite::PointEval, k);
        EXPECT_EQ(first, injectFault(FaultSite::PointEval, k)) << k;
        fired += first ? 1 : 0;
    }
    // A 0.5 rate over 1000 keys lands near 500.
    EXPECT_GT(fired, 400u);
    EXPECT_LT(fired, 600u);

    // Sites are decorrelated: the same keys draw independently at
    // another site with the same rate.
    installFaults(parseFaultSpec(
        "point-eval=0.5,cache-load-read=0.5,seed=42"));
    bool siteDiffers = false;
    for (std::uint64_t k = 0; k < 64; ++k) {
        siteDiffers |= injectFault(FaultSite::PointEval, k) !=
                       injectFault(FaultSite::CacheLoadRead, k);
    }
    EXPECT_TRUE(siteDiffers);

    // And the seed reshuffles the assignment.
    std::vector<bool> seed42;
    for (std::uint64_t k = 0; k < 64; ++k)
        seed42.push_back(injectFault(FaultSite::PointEval, k));
    installFaults(parseFaultSpec("point-eval=0.5,seed=43"));
    bool seedDiffers = false;
    for (std::uint64_t k = 0; k < 64; ++k)
        seedDiffers |= injectFault(FaultSite::PointEval, k) != seed42[k];
    EXPECT_TRUE(seedDiffers);
}

TEST(FaultInjector, RateEndpointsAreExact)
{
    FaultGuard guard;
    installFaults(parseFaultSpec("point-eval=1"));
    for (std::uint64_t k = 0; k < 100; ++k)
        EXPECT_TRUE(injectFault(FaultSite::PointEval, k));
    // A site left at rate 0 never fires even while armed.
    for (std::uint64_t k = 0; k < 100; ++k)
        EXPECT_FALSE(injectFault(FaultSite::CacheLoadRead, k));
    FaultStats stats = faultStats();
    EXPECT_EQ(stats.checks[static_cast<int>(FaultSite::PointEval)],
              100u);
    EXPECT_EQ(stats.injected[static_cast<int>(FaultSite::PointEval)],
              100u);
    EXPECT_EQ(
        stats.injected[static_cast<int>(FaultSite::CacheLoadRead)], 0u);
}

// --- Adversarial cache entries -----------------------------------------

/** Stores one valid entry and returns (key, canonical, entry path). */
struct SeededCache
{
    ResultCache cache;
    LibraInputs inputs;
    LibraReport report;
    std::string canonical;
    std::uint64_t key;
    std::string file;

    explicit SeededCache(const std::string& dir)
        : cache(dir),
          inputs(miniInputs()),
          report(runLibra(inputs)),
          canonical(canonicalStudyKey(inputs)),
          key(studyCacheHash(inputs))
    {
        char name[32];
        std::snprintf(name, sizeof(name), "%016llx.json",
                      static_cast<unsigned long long>(key));
        file = dir + "/" + name;
        EXPECT_TRUE(cache.store(key, canonical, report));
    }
};

TEST(CacheAdversarial, TruncatedEntryIsQuarantinedAndRecoverable)
{
    std::string dir = freshDir("libra-fault-truncated");
    SeededCache s(dir);
    std::string full = readFile(s.file);
    {
        std::ofstream out(s.file, std::ios::trunc);
        out << full.substr(0, full.size() / 2);
    }

    setInformEnabled(false);
    LibraReport out;
    EXPECT_FALSE(s.cache.load(s.key, s.canonical, &out));
    EXPECT_EQ(s.cache.stats().quarantined, 1u);
    EXPECT_TRUE(std::filesystem::exists(s.file + ".corrupt"));
    EXPECT_FALSE(std::filesystem::exists(s.file));

    // Self-healing: the key is free again, a re-store round-trips.
    EXPECT_TRUE(s.cache.store(s.key, s.canonical, s.report));
    ASSERT_TRUE(s.cache.load(s.key, s.canonical, &out));
    EXPECT_EQ(out.optimized.bw, s.report.optimized.bw);
    std::filesystem::remove_all(dir);
}

TEST(CacheAdversarial, BitFlippedBodyFailsTheChecksum)
{
    std::string dir = freshDir("libra-fault-bitflip");
    SeededCache s(dir);
    std::string text = readFile(s.file);
    // Flip one digit inside the body (past the envelope header) —
    // still perfectly valid JSON, but not the text the FNV signed.
    std::size_t at = text.find_last_of("0123456789");
    ASSERT_NE(at, std::string::npos);
    text[at] = text[at] == '9' ? '8' : '9';
    {
        std::ofstream out(s.file, std::ios::trunc);
        out << text;
    }

    setInformEnabled(false);
    LibraReport out;
    EXPECT_FALSE(s.cache.load(s.key, s.canonical, &out));
    EXPECT_EQ(s.cache.stats().quarantined, 1u);
    EXPECT_TRUE(std::filesystem::exists(s.file + ".corrupt"));
    std::filesystem::remove_all(dir);
}

TEST(CacheAdversarial, VersionSkewIsQuarantinedEvenWithValidChecksum)
{
    std::string dir = freshDir("libra-fault-version");
    SeededCache s(dir);
    // A structurally perfect entry from a "future" engine: correct
    // checksum over its body, wrong engine version.
    Json body = Json::object();
    body["version"] = static_cast<double>(kStudyCacheVersion + 1);
    body["inputs"] = s.canonical;
    body["report"] = reportToJson(s.report);
    char fnv[24];
    std::snprintf(fnv, sizeof(fnv), "%016llx",
                  static_cast<unsigned long long>(
                      studyCacheHashOfKey(body.dump(1))));
    Json j = Json::object();
    j["fnv"] = std::string(fnv);
    j["body"] = std::move(body);
    {
        std::ofstream out(s.file, std::ios::trunc);
        out << j.dump(1) << "\n";
    }

    setInformEnabled(false);
    LibraReport out;
    EXPECT_FALSE(s.cache.load(s.key, s.canonical, &out));
    EXPECT_EQ(s.cache.stats().quarantined, 1u);
    EXPECT_TRUE(std::filesystem::exists(s.file + ".corrupt"));
    std::filesystem::remove_all(dir);
}

TEST(CacheAdversarial, HashCollisionIsAMissButNotQuarantined)
{
    std::string dir = freshDir("libra-fault-collision");
    SeededCache s(dir);

    // A *valid* entry under this key whose inputs are someone else's:
    // exactly what a 64-bit collision looks like. The entry must not
    // be served — and must not be destroyed either (it is the rightful
    // result of the other point).
    setInformEnabled(false);
    LibraReport out;
    std::string other = canonicalStudyKey(miniInputs("SEED 9\n"));
    EXPECT_FALSE(s.cache.load(s.key, other, &out));
    EXPECT_EQ(s.cache.stats().collisions, 1u);
    EXPECT_EQ(s.cache.stats().quarantined, 0u);
    EXPECT_TRUE(std::filesystem::exists(s.file));

    // The rightful owner still hits.
    ASSERT_TRUE(s.cache.load(s.key, s.canonical, &out));
    std::filesystem::remove_all(dir);
}

TEST(CacheAdversarial, LegacyUncheckedEntryIsQuarantined)
{
    std::string dir = freshDir("libra-fault-legacy");
    SeededCache s(dir);
    // Pre-envelope format: body at top level, no "fnv" field.
    Json j = Json::object();
    j["version"] = static_cast<double>(kStudyCacheVersion);
    j["inputs"] = s.canonical;
    j["report"] = reportToJson(s.report);
    {
        std::ofstream out(s.file, std::ios::trunc);
        out << j.dump(1) << "\n";
    }

    setInformEnabled(false);
    LibraReport out;
    EXPECT_FALSE(s.cache.load(s.key, s.canonical, &out));
    EXPECT_EQ(s.cache.stats().quarantined, 1u);
    std::filesystem::remove_all(dir);
}

// --- Crash hygiene -----------------------------------------------------

TEST(CacheCrashSafety, StaleTmpFilesAreReapedOnOpen)
{
    std::string dir = freshDir("libra-fault-tmp");
    std::filesystem::create_directories(dir);
    // A tmp file from a pid that cannot exist, one with a garbage
    // suffix, and one owned by this live process.
    std::string dead = dir + "/aaaa.json.tmp.999999999";
    std::string garbage = dir + "/bbbb.json.tmp.notapid";
    std::string live =
        dir + "/cccc.json.tmp." + std::to_string(::getpid());
    for (const auto& f : {dead, garbage, live})
        std::ofstream(f) << "{}";

    setInformEnabled(false);
    ResultCache cache(dir);
    EXPECT_TRUE(cache.enabled());
    EXPECT_EQ(cache.stats().reapedTmp, 2u);
    EXPECT_FALSE(std::filesystem::exists(dead));
    EXPECT_FALSE(std::filesystem::exists(garbage));
    EXPECT_TRUE(std::filesystem::exists(live));
    std::filesystem::remove_all(dir);
}

TEST(CacheCrashSafety, UncreatableDirectoryDisablesTheCache)
{
    // A directory path under a regular file can never be created —
    // works even when the test runs as root (chmod tricks do not).
    std::string blocker = testing::TempDir() + "libra-fault-blocker";
    std::filesystem::remove_all(blocker);
    std::ofstream(blocker) << "not a directory";

    setInformEnabled(false);
    ResultCache cache(blocker + "/sub");
    EXPECT_FALSE(cache.enabled());

    LibraInputs inputs = miniInputs();
    LibraReport report = runLibra(inputs);
    std::string canonical = canonicalStudyKey(inputs);
    std::uint64_t key = studyCacheHash(inputs);
    LibraReport out;
    EXPECT_FALSE(cache.store(key, canonical, report));
    EXPECT_FALSE(cache.load(key, canonical, &out));
    std::filesystem::remove(blocker);
}

// --- Injected cache-I/O faults -----------------------------------------

TEST(CacheInjected, LoadFaultsAreMissesStoreFaultsDegrade)
{
    FaultGuard guard;
    std::string dir = freshDir("libra-fault-injected");
    SeededCache s(dir);
    setInformEnabled(false);

    installFaults(parseFaultSpec("cache-load-read=1"));
    LibraReport out;
    EXPECT_FALSE(s.cache.load(s.key, s.canonical, &out));
    EXPECT_GE(s.cache.stats().loadFailures, 1u);

    // Every write attempt fails -> the retries are exhausted, the
    // store degrades to a warning, and no tmp file is left behind.
    installFaults(parseFaultSpec("cache-store-write=1"));
    std::filesystem::remove(s.file);
    EXPECT_FALSE(s.cache.store(s.key, s.canonical, s.report));
    EXPECT_EQ(s.cache.stats().storeFailures, 1u);
    EXPECT_FALSE(std::filesystem::exists(s.file));
    bool tmpLeft = false;
    for (const auto& entry :
         std::filesystem::directory_iterator(dir)) {
        tmpLeft |= entry.path().string().find(".tmp.") !=
                   std::string::npos;
    }
    EXPECT_FALSE(tmpLeft);

    // Same for the publish rename.
    installFaults(parseFaultSpec("cache-store-rename=1"));
    EXPECT_FALSE(s.cache.store(s.key, s.canonical, s.report));

    // Disarmed again, the cache works normally.
    clearFaults();
    EXPECT_TRUE(s.cache.store(s.key, s.canonical, s.report));
    ASSERT_TRUE(s.cache.load(s.key, s.canonical, &out));
    EXPECT_EQ(out.optimized.bw, s.report.optimized.bw);
    std::filesystem::remove_all(dir);
}

TEST(CacheInjected, OpenFaultDisablesInsteadOfAborting)
{
    FaultGuard guard;
    setInformEnabled(false);
    installFaults(parseFaultSpec("cache-open=1"));
    std::string dir = freshDir("libra-fault-open");
    ResultCache cache(dir);
    EXPECT_FALSE(cache.enabled());
}

// --- Scenario registration for matrix tests ----------------------------

const char*
faultMiniScenarioName()
{
    static const char* name = [] {
        Scenario s;
        s.name = "test-fault-mini";
        s.title = "fault-test all-ok scenario";
        s.build = [] {
            std::vector<LibraInputs> points;
            points.push_back(miniInputs("SEED 11\n"));
            points.push_back(miniInputs("SEED 12\n"));
            return points;
        };
        s.format = [](const std::vector<LibraInputs>& points,
                      const std::vector<LibraReport>& reports) {
            ScenarioOutput out;
            for (std::size_t i = 0; i < points.size(); ++i) {
                ScenarioRow row;
                row.label("point", std::to_string(i));
                row.metric("speedup", reports[i].speedup);
                out.rows.push_back(std::move(row));
            }
            return out;
        };
        ScenarioRegistry::global().add(std::move(s));
        return "test-fault-mini";
    }();
    return name;
}

const char*
poisonScenarioName()
{
    static const char* name = [] {
        Scenario s;
        s.name = "test-poison";
        s.title = "fault-test scenario with one poisoned point";
        s.build = [] {
            std::vector<LibraInputs> points;
            points.push_back(miniInputs("SEED 13\n"));
            points.push_back(poisonedInputs());
            return points;
        };
        s.format = [](const std::vector<LibraInputs>& points,
                      const std::vector<LibraReport>& reports) {
            ScenarioOutput out;
            for (std::size_t i = 0; i < points.size(); ++i) {
                ScenarioRow row;
                row.label("point", std::to_string(i));
                row.metric("speedup", reports[i].speedup);
                out.rows.push_back(std::move(row));
            }
            return out;
        };
        ScenarioRegistry::global().add(std::move(s));
        return "test-poison";
    }();
    return name;
}

// --- Sweep isolation ---------------------------------------------------

TEST(SweepIsolation, CapturesFailuresAndKeepsOkPointsBitIdentical)
{
    std::vector<LibraInputs> points;
    points.push_back(miniInputs());
    points.push_back(poisonedInputs("SW(4)_RI(8)"));
    points.push_back(miniInputs("SEED 5\n"));
    points.push_back(poisonedInputs("SW(2)_RI(2)"));

    SweepOutcome outcome = runLibraSweepIsolated(points);
    ASSERT_EQ(outcome.status.size(), 4u);
    EXPECT_EQ(outcome.failed, 2u);
    EXPECT_TRUE(outcome.status[0].ok);
    EXPECT_FALSE(outcome.status[1].ok);
    EXPECT_TRUE(outcome.status[2].ok);
    EXPECT_FALSE(outcome.status[3].ok);

    // The captured message is the FatalError text, prefix stripped.
    EXPECT_NE(outcome.status[1].error.find("ResNet-50"),
              std::string::npos);
    EXPECT_EQ(outcome.status[1].error.rfind("fatal: ", 0),
              std::string::npos);
    // The two poisoned shapes fail with distinct messages.
    EXPECT_NE(outcome.status[1].error, outcome.status[3].error);

    // Ok points are bit-identical to standalone runs.
    LibraReport solo = runLibra(miniInputs());
    EXPECT_EQ(outcome.reports[0].optimized.bw, solo.optimized.bw);
    EXPECT_EQ(outcome.reports[0].speedup, solo.speedup);
}

TEST(SweepIsolation, AbortRethrowsTheLowestIndexFailure)
{
    std::vector<LibraInputs> points;
    points.push_back(miniInputs());
    points.push_back(poisonedInputs("SW(4)_RI(8)"));
    points.push_back(poisonedInputs("SW(2)_RI(2)"));

    SweepOutcome outcome = runLibraSweepIsolated(points);
    ASSERT_FALSE(outcome.status[1].ok);

    // runLibraSweep must surface point 1's error — the lowest failing
    // index — no matter which worker hit its failure first.
    try {
        runLibraSweep(points);
        FAIL() << "expected FatalError";
    } catch (const FatalError& e) {
        EXPECT_EQ(std::string(e.what()),
                  "fatal: " + outcome.status[1].error);
    }
}

// --- Matrix isolation --------------------------------------------------

TEST(MatrixIsolation, AbortModeUnwindsIsolateModeCompletes)
{
    setInformEnabled(false);
    // Default (abort) keeps the classic unwind.
    EXPECT_THROW(runScenarioMatrix({poisonScenarioName()}), FatalError);

    MatrixOptions isolate;
    isolate.failMode = FailMode::Isolate;
    MatrixResult result =
        runScenarioMatrix({poisonScenarioName()}, isolate);
    EXPECT_EQ(result.failed, 1u);
    ASSERT_EQ(result.scenarios.size(), 1u);
    const ScenarioRun& run = result.scenarios[0];
    ASSERT_EQ(run.failures.size(), 1u);
    EXPECT_EQ(run.failures[0].index, 1u);
    EXPECT_EQ(run.failures[0].label, "SW(4)_RI(8)");
    EXPECT_NE(run.failures[0].error.find("ResNet-50"),
              std::string::npos);
    // A failing scenario suppresses its table rather than emitting a
    // silently misaligned partial one.
    EXPECT_TRUE(run.output.rows.empty());
}

TEST(MatrixIsolation, OtherScenariosStayByteIdentical)
{
    setInformEnabled(false);
    // The all-ok reference run of the healthy scenario alone.
    MatrixResult ok = runScenarioMatrix({faultMiniScenarioName()});
    ASSERT_EQ(ok.scenarios.size(), 1u);
    std::string okJson = scenarioRunToJson(ok.scenarios[0]).dump(1);
    // All-ok runs carry no "failures" field: pre-isolation schema.
    EXPECT_EQ(okJson.find("failures"), std::string::npos);

    MatrixOptions isolate;
    isolate.failMode = FailMode::Isolate;
    MatrixResult mixed = runScenarioMatrix(
        {faultMiniScenarioName(), poisonScenarioName()}, isolate);
    ASSERT_EQ(mixed.scenarios.size(), 2u);
    EXPECT_EQ(mixed.failed, 1u);

    // The healthy scenario's emission is byte-identical to the run
    // where nothing failed at all.
    EXPECT_EQ(scenarioRunToJson(mixed.scenarios[0]).dump(1), okJson);
    // The poisoned scenario's emission carries the failure record.
    std::string bad = scenarioRunToJson(mixed.scenarios[1]).dump(1);
    EXPECT_NE(bad.find("\"failures\""), std::string::npos);
    EXPECT_NE(bad.find("SW(4)_RI(8)"), std::string::npos);
}

TEST(MatrixIsolation, InjectedPointEvalFaultsAreDeterministic)
{
    FaultGuard guard;
    setInformEnabled(false);
    installFaults(parseFaultSpec("point-eval=1,seed=3"));

    MatrixOptions isolate;
    isolate.failMode = FailMode::Isolate;
    MatrixResult result =
        runScenarioMatrix({faultMiniScenarioName()}, isolate);
    // Rate 1: every cacheable point fails, with the injector's tag.
    EXPECT_EQ(result.failed, 2u);
    ASSERT_EQ(result.scenarios[0].failures.size(), 2u);
    EXPECT_EQ(result.scenarios[0].failures[0].error,
              "injected point-eval fault");

    // Abort mode: the same injection unwinds instead.
    EXPECT_THROW(runScenarioMatrix({faultMiniScenarioName()}),
                 FatalError);
}

TEST(MatrixFaults, InjectedCacheFaultsNeverChangeTheOutput)
{
    FaultGuard guard;
    setInformEnabled(false);

    // Fault-free, cache-free reference.
    MatrixResult clean = runScenarioMatrix({faultMiniScenarioName()});
    std::string cleanJson = matrixToJson(clean).dump(1);

    // Every cache I/O seam failing at once — open, load, store write,
    // publish rename — must leave the emitted matrix byte-identical:
    // the cache may only ever amortize, never alter.
    installFaults(parseFaultSpec(
        "cache-open=1,cache-load-read=1,cache-store-write=1,"
        "cache-store-rename=1,seed=9"));
    std::string dir = freshDir("libra-fault-matrix");
    MatrixOptions options;
    options.cacheDir = dir;
    MatrixResult faulty =
        runScenarioMatrix({faultMiniScenarioName()}, options);
    EXPECT_EQ(matrixToJson(faulty).dump(1), cleanJson);

    // A partial 25% load-fault rate over a warm cache: some hits are
    // replaced by recomputation, the bytes still cannot change.
    clearFaults();
    MatrixResult warm =
        runScenarioMatrix({faultMiniScenarioName()}, options);
    EXPECT_EQ(matrixToJson(warm).dump(1), cleanJson);
    installFaults(parseFaultSpec("cache-load-read=0.25,seed=9"));
    MatrixResult flaky =
        runScenarioMatrix({faultMiniScenarioName()}, options);
    EXPECT_EQ(matrixToJson(flaky).dump(1), cleanJson);
    std::filesystem::remove_all(dir);
}

TEST(MatrixCsv, FailureRowsCarryTheirOwnHeader)
{
    setInformEnabled(false);
    MatrixOptions isolate;
    isolate.failMode = FailMode::Isolate;
    MatrixResult mixed = runScenarioMatrix(
        {faultMiniScenarioName(), poisonScenarioName()}, isolate);
    ASSERT_EQ(mixed.failed, 1u);

    std::ostringstream os;
    emitMatrixCsv(mixed, os);
    const std::string csv = os.str();

    // Failure rows have index/label/error columns, which do not line
    // up with the scenario's label/metric row header — so they must
    // sit under their own header, and every failure row must carry
    // exactly its five columns.
    const std::string failureHeader = "scenario,kind,index,label,error";
    std::size_t at = csv.find(failureHeader);
    ASSERT_NE(at, std::string::npos);
    std::size_t rowStart = csv.find('\n', at) + 1;
    std::size_t rowEnd = csv.find('\n', rowStart);
    std::string row = csv.substr(rowStart, rowEnd - rowStart);
    EXPECT_EQ(row.rfind("test-poison,failure,1,SW(4)_RI(8),", 0), 0u)
        << row;

    // All-ok output has no failure section at all — byte-identical to
    // the pre-isolation emission.
    MatrixResult ok = runScenarioMatrix({faultMiniScenarioName()});
    std::ostringstream okOs;
    emitMatrixCsv(ok, okOs);
    EXPECT_EQ(okOs.str().find("failure"), std::string::npos);
}

} // namespace
} // namespace libra
